"""The server half of the distributed worker plane.

:class:`RemoteWorkerPool` implements the same contract the thread and
process pools do — ``run_spec(spec_doc, cache_dir) -> (payload, None)``
— but dispatches to ``repro worker --connect HOST:PORT`` agent
processes (possibly on other machines) over the length-prefixed JSON
framing of :mod:`repro.service.framing`.

Wire protocol (every message is one frame; ``type`` discriminates)::

    worker -> pool   {"type": "register", "worker_id", "host", "pid"}
    pool -> worker   {"type": "registered", "worker_id",
                      "heartbeat_interval", "artifact_base"}
    worker -> pool   {"type": "heartbeat", "busy": bool}       (periodic)
    pool -> worker   {"type": "run", "seq", "job_id", "spec",
                      "cache_dir"}
    worker -> pool   {"type": "result", "seq", "ok": true,
                      "payload": {...}}
                   | {"type": "result", "seq", "ok": false,
                      "error_type", "error"}
    pool -> worker   {"type": "shutdown"}                      (polite)

Liveness is heartbeat-driven and *subsumes* EOF detection: a worker is
lost when its socket dies (EOF, reset, torn frame) **or** when its
heartbeat age exceeds ``heartbeat_timeout`` — whichever fires first.
Losing a worker fails its in-flight dispatch with
:class:`~repro.service.pool.WorkerCrashError`, which the service's
requeue loop (and the job store's replay machinery) already treats as
retryable: at-least-once semantics, same event vocabulary as a crashed
process worker.  A worker that reconnects simply registers again as a
fresh handle; results from its *previous* connection are gone with the
socket, so a slow-but-alive worker that out-lives its heartbeat
deadline can never double-complete a job (its late result has no
channel to arrive on, and per-connection ``seq`` numbers reject
anything stale that somehow could).
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.service.framing import FrameChannel, FrameError
from repro.service.pool import RemoteJobError, WorkerCrashError

#: Handshake budget: a connection that does not produce a ``register``
#: frame within this window is dropped (port scanners, half-open TCP).
REGISTER_HANDSHAKE_TIMEOUT = 10.0


class _Dispatch:
    """One in-flight job on one worker; resolved exactly once."""

    def __init__(self, seq: int, job_id: Optional[str]) -> None:
        self.seq = seq
        self.job_id = job_id
        self.dispatched_at = time.time()
        self.done = threading.Event()
        self.payload: Optional[Dict[str, object]] = None
        self.error: Optional[BaseException] = None
        self._lock = threading.Lock()

    def resolve(self, payload: Dict[str, object]) -> bool:
        with self._lock:
            if self.done.is_set():
                return False
            self.payload = payload
            self.done.set()
            return True

    def fail(self, error: BaseException) -> bool:
        with self._lock:
            if self.done.is_set():
                return False
            self.error = error
            self.done.set()
            return True


class _RemoteHandle:
    """One registered worker connection (one session; reconnects make
    a fresh handle)."""

    def __init__(
        self,
        name: str,
        channel: FrameChannel,
        doc: Dict[str, object],
        peer: Tuple[str, int],
    ) -> None:
        self.name = name
        self.channel = channel
        self.host = str(doc.get("host") or peer[0])
        self.pid = doc.get("pid")
        self.peer = peer
        self.registered_at = time.time()
        self.last_heartbeat = time.monotonic()
        self.last_heartbeat_epoch = time.time()
        self.lost = False
        self.lost_reason: Optional[str] = None
        self.current: Optional[_Dispatch] = None
        self._seq = 0

    def beat(self) -> None:
        self.last_heartbeat = time.monotonic()
        self.last_heartbeat_epoch = time.time()

    def heartbeat_age(self) -> float:
        return time.monotonic() - self.last_heartbeat

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq


class RemoteWorkerPool:
    """Dispatch jobs to remote worker agents over TCP.

    Parameters
    ----------
    workers:
        Accepted for pool-factory symmetry; capacity is actually
        however many agents connect (the value is kept only as a
        sizing hint in :meth:`stats`).
    host / port:
        The listen address (``port=0`` binds an ephemeral port; read it
        back from :attr:`address`).  Binding happens in the
        constructor, so the address is known before any agent starts.
    heartbeat_timeout:
        A worker whose heartbeat age exceeds this is lost: its socket
        is closed, its in-flight job fails with
        :class:`WorkerCrashError` (→ requeue), and it may re-register.
    heartbeat_interval:
        Advertised to agents in the ``registered`` reply; defaults to a
        quarter of the timeout so a single dropped beat never kills a
        healthy worker.
    register_timeout:
        How long :meth:`run_spec` waits for *any* worker to be
        available before failing the dispatch with
        :class:`WorkerCrashError` (which the requeue path retries).
    artifact_base:
        Base URL of the service's HTTP front end, advertised to agents
        for ``GET/PUT /artifacts`` cache sync; settable after the HTTP
        server binds (see :attr:`artifact_base`).
    """

    kind = "remote"
    transport = "tcp"

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout: float = 10.0,
        heartbeat_interval: Optional[float] = None,
        register_timeout: float = 60.0,
        artifact_base: Optional[str] = None,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}"
            )
        self.workers_hint = int(workers)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.heartbeat_interval = float(
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, heartbeat_timeout / 4.0)
        )
        self.register_timeout = float(register_timeout)
        self.artifact_base = artifact_base
        self._lock = threading.Lock()
        self._handles: List[_RemoteHandle] = []
        self._idle: "queue.Queue[_RemoteHandle]" = queue.Queue()
        self._registrations = 0
        self._lost = 0
        self._rejected = 0
        self._results_dropped = 0
        self._terminated = False
        self._listener = socket.create_server((host, port))
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-remote-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="repro-remote-monitor",
            daemon=True,
        )
        self._monitor_thread.start()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown/terminate
            threading.Thread(
                target=self._handshake, args=(sock, peer),
                name="repro-remote-handshake", daemon=True,
            ).start()

    def _handshake(self, sock: socket.socket, peer) -> None:
        channel = FrameChannel(sock)
        sock.settimeout(REGISTER_HANDSHAKE_TIMEOUT)
        try:
            doc = channel.recv()
        except (FrameError, OSError):
            doc = None
        if not isinstance(doc, dict) or doc.get("type") != "register":
            with self._lock:
                self._rejected += 1
            channel.close()
            return
        sock.settimeout(None)
        base = str(doc.get("worker_id") or f"{peer[0]}:{peer[1]}")
        with self._lock:
            if self._terminated:
                channel.close()
                return
            live = {h.name for h in self._handles if not h.lost}
            name, suffix = base, 2
            while name in live:  # two live agents chose the same id
                name = f"{base}~{suffix}"
                suffix += 1
            handle = _RemoteHandle(name, channel, doc, peer[:2])
            self._handles.append(handle)
            self._registrations += 1
        try:
            channel.send({
                "type": "registered",
                "worker_id": name,
                "heartbeat_interval": self.heartbeat_interval,
                "heartbeat_timeout": self.heartbeat_timeout,
                "artifact_base": self.artifact_base,
            })
        except OSError:
            self._mark_lost(handle, "connection closed during registration")
            return
        threading.Thread(
            target=self._reader_loop, args=(handle,),
            name=f"repro-remote-read-{name}", daemon=True,
        ).start()
        self._idle.put(handle)

    # ------------------------------------------------------------------
    # Per-worker reader + liveness monitor
    # ------------------------------------------------------------------
    def _reader_loop(self, handle: _RemoteHandle) -> None:
        while True:
            try:
                doc = handle.channel.recv()
            except FrameError as exc:
                self._mark_lost(handle, f"torn frame: {exc}")
                return
            except OSError as exc:
                self._mark_lost(
                    handle, f"socket error: {type(exc).__name__}"
                )
                return
            if doc is None:
                self._mark_lost(handle, "connection closed")
                return
            kind = doc.get("type")
            if kind == "heartbeat":
                handle.beat()
            elif kind == "result":
                handle.beat()
                self._settle_result(handle, doc)
            # Unknown message types are ignored: an agent one protocol
            # rev ahead must not kill the session.

    def _settle_result(
        self, handle: _RemoteHandle, doc: Dict[str, object]
    ) -> None:
        with self._lock:
            dispatch = handle.current
            if dispatch is None or doc.get("seq") != dispatch.seq:
                # A stale result (e.g. from before a requeue decision on
                # a different handle, or a protocol bug).  Dropping it
                # here is what makes requeue at-least-once but never
                # double-completing: only the live dispatch can settle.
                self._results_dropped += 1
                return
        if doc.get("ok"):
            payload = doc.get("payload")
            if isinstance(payload, dict):
                dispatch.resolve(payload)
            else:
                dispatch.fail(WorkerCrashError(
                    f"worker {handle.name} returned a malformed result "
                    f"payload"
                ))
        else:
            dispatch.fail(RemoteJobError(
                str(doc.get("error_type") or "RuntimeError"),
                str(doc.get("error") or "remote job failed"),
            ))

    def _monitor_loop(self) -> None:
        interval = max(0.02, min(1.0, self.heartbeat_timeout / 4.0))
        while True:
            time.sleep(interval)
            with self._lock:
                if self._terminated:
                    return
                stale = [
                    h for h in self._handles
                    if not h.lost and h.heartbeat_age() > self.heartbeat_timeout
                ]
            for handle in stale:
                self._mark_lost(
                    handle,
                    f"heartbeat timeout ({handle.heartbeat_age():.1f}s "
                    f"> {self.heartbeat_timeout}s)",
                )

    def _mark_lost(
        self, handle: _RemoteHandle, reason: str, *, count: bool = True
    ) -> None:
        with self._lock:
            if handle.lost:
                return
            handle.lost = True
            handle.lost_reason = reason
            dispatch = handle.current
            handle.current = None
            try:
                self._handles.remove(handle)
            except ValueError:
                pass
            if count:
                self._lost += 1
        # Close outside the lock: shutdown() on a dead peer can block.
        handle.channel.close()
        if dispatch is not None:
            dispatch.fail(WorkerCrashError(
                f"remote worker {handle.name} ({handle.host}) lost "
                f"mid-job: {reason}"
            ))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _checkout(self) -> _RemoteHandle:
        deadline = time.monotonic() + self.register_timeout
        while True:
            with self._lock:
                if self._terminated:
                    raise WorkerCrashError("worker pool is terminated")
                connected = len(self._handles)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerCrashError(
                    f"no remote worker available within "
                    f"{self.register_timeout}s "
                    f"(connected: {connected}; start agents with "
                    f"`repro worker --connect "
                    f"{self.address[0]}:{self.address[1]}`)"
                )
            try:
                handle = self._idle.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if handle.lost:
                continue  # dead handle drained from the queue
            return handle

    def run_spec(
        self,
        spec_doc: Dict[str, object],
        cache_dir: Optional[str],
        *,
        job_id: Optional[str] = None,
    ) -> Tuple[Dict[str, object], None]:
        """Ship one spec to a connected agent and await its result.

        ``cache_dir`` is forwarded as advisory only — agents default to
        their *own* per-host cache roots (content-addressed keys make
        them interchangeable); an agent on the service's host may elect
        to share the directory.
        """
        handle = self._checkout()
        with self._lock:
            if handle.lost:  # lost between checkout and dispatch
                pending = None
            else:
                pending = _Dispatch(handle.next_seq(), job_id)
                handle.current = pending
        if pending is None:
            return self.run_spec(spec_doc, cache_dir, job_id=job_id)
        try:
            handle.channel.send({
                "type": "run",
                "seq": pending.seq,
                "job_id": job_id,
                "spec": spec_doc,
                "cache_dir": cache_dir,
            })
        except (OSError, FrameError) as exc:
            self._mark_lost(handle, f"send failed: {type(exc).__name__}")
        pending.done.wait()
        with self._lock:
            if handle.current is pending:
                handle.current = None
            lost = handle.lost
        if not lost:
            self._idle.put(handle)
        if pending.error is not None:
            raise pending.error
        payload = pending.payload
        assert payload is not None
        # Dispatch provenance for /healthz consumers and the service's
        # trace grafting; epochs, so they align with trace epoch0.
        payload["remote"] = {
            "worker_id": handle.name,
            "host": handle.host,
            "pid": handle.pid,
            "transport": self.transport,
            "registered_at": handle.registered_at,
            "last_heartbeat_at": handle.last_heartbeat_epoch,
            "dispatched_at": pending.dispatched_at,
            "completed_at": time.time(),
        }
        return payload, None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Lifecycle counters: registrations map onto the spawn/crash
        vocabulary the local pools already export, plus remote-only
        churn counters."""
        with self._lock:
            return {
                "workers_spawned": self._registrations,
                "workers_crashed": self._lost,
                "workers_connected": len(self._handles),
                "registrations_rejected": self._rejected,
                "results_dropped": self._results_dropped,
            }

    def workers_view(self) -> List[Dict[str, object]]:
        """Per-connected-worker health rows for /healthz and /metrics."""
        with self._lock:
            return [
                {
                    "worker": handle.name,
                    "kind": self.kind,
                    "transport": self.transport,
                    "host": handle.host,
                    "pid": handle.pid,
                    "job_id": (
                        handle.current.job_id if handle.current else None
                    ),
                    "heartbeat_age_s": round(handle.heartbeat_age(), 3),
                }
                for handle in self._handles
            ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Close the listener and release every agent politely.

        Agents receive a ``shutdown`` frame (their ``repro worker``
        process exits 0) and in-flight dispatches fail — with
        ``wait=True`` there should be none left by contract (the
        service joins its scheduler first).
        """
        with self._lock:
            self._terminated = True
            handles = list(self._handles)
        try:
            self._listener.close()
        except OSError:
            pass
        for handle in handles:
            try:
                handle.channel.send({"type": "shutdown"})
            except (OSError, FrameError):
                pass
            self._mark_lost(handle, "pool shutdown", count=False)

    def terminate(self) -> None:
        """Drop every connection immediately (the ``^C`` path); blocked
        dispatchers wake with :class:`WorkerCrashError`."""
        with self._lock:
            self._terminated = True
            handles = list(self._handles)
        try:
            self._listener.close()
        except OSError:
            pass
        for handle in handles:
            self._mark_lost(handle, "pool terminated", count=False)
