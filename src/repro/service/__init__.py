"""``repro.service`` — the long-lived benchmark job service.

:class:`BenchmarkService` executes :class:`~repro.api.spec.RunSpec`
jobs concurrently (submit / status / result / cancel), deduplicates
in-flight duplicates by spec hash, shares one artifact cache across
workers, and appends every lifecycle event to a durable JSONL
:class:`~repro.service.jobs.JobStore`.  The stdlib HTTP front end
(:mod:`repro.service.httpd`, ``repro-pipeline serve``) lets many remote
clients drive one service.
"""

from __future__ import annotations

from repro.service.jobs import Job, JobState, JobStore, load_events
from repro.service.service import (
    BenchmarkService,
    JobCancelledError,
    JobError,
    JobFailedError,
    UnknownJobError,
)
from repro.service.httpd import (
    BenchmarkHTTPServer,
    make_server,
    run_server,
    serve_in_thread,
)

__all__ = [
    "BenchmarkHTTPServer",
    "BenchmarkService",
    "Job",
    "JobCancelledError",
    "JobError",
    "JobFailedError",
    "JobState",
    "JobStore",
    "UnknownJobError",
    "load_events",
    "make_server",
    "run_server",
    "serve_in_thread",
]
