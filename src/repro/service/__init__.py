"""``repro.service`` — the long-lived benchmark job service.

:class:`BenchmarkService` executes :class:`~repro.api.spec.RunSpec`
jobs concurrently (submit / status / result / cancel) on a thread,
multi-process, or remote-TCP worker pool
(``worker_kind=thread|process|remote`` — specs ship to workers as
JSON, results return as the job store's record/rank-digest documents;
``remote`` dispatches to ``repro-pipeline worker --connect`` agents
with heartbeat liveness and cross-host artifact sync), fans :class:`~repro.api.spec.SweepSpec` grids out
as parent/child sweep jobs (``submit_sweep``), deduplicates in-flight
duplicates by spec hash, shares one artifact cache across workers and
processes, and appends every lifecycle event to a durable JSONL
:class:`~repro.service.jobs.JobStore` that it replays on restart
(finished jobs restore verbatim, interrupted ones re-queue).  The
stdlib HTTP front end (:mod:`repro.service.httpd`, ``repro-pipeline
serve``) lets many remote clients drive one service.
"""

from __future__ import annotations

from repro.service.agent import WorkerAgent, run_worker
from repro.service.framing import FrameChannel, FrameError
from repro.service.jobs import Job, JobState, JobStore, load_events
from repro.service.pool import (
    WORKER_KINDS,
    ProcessWorkerPool,
    RemoteJobError,
    ThreadWorkerPool,
    WorkerCrashError,
)
from repro.service.remote import RemoteWorkerPool
from repro.service.service import (
    BenchmarkService,
    JobCancelledError,
    JobError,
    JobFailedError,
    UnknownJobError,
)
from repro.service.httpd import (
    BenchmarkHTTPServer,
    make_server,
    run_server,
    serve_in_thread,
)

__all__ = [
    "BenchmarkHTTPServer",
    "BenchmarkService",
    "FrameChannel",
    "FrameError",
    "Job",
    "JobCancelledError",
    "JobError",
    "JobFailedError",
    "JobState",
    "JobStore",
    "ProcessWorkerPool",
    "RemoteJobError",
    "RemoteWorkerPool",
    "ThreadWorkerPool",
    "UnknownJobError",
    "WORKER_KINDS",
    "WorkerAgent",
    "WorkerCrashError",
    "load_events",
    "make_server",
    "run_server",
    "run_worker",
    "serve_in_thread",
]
