"""Length-prefixed JSON framing for the remote worker transport.

The distributed worker plane ships the same JSON documents the
pipe-based :class:`~repro.service.pool.ProcessWorkerPool` already
speaks, but over a TCP stream.  A stream has no message boundaries, so
every document travels as one *frame*::

    [4-byte big-endian payload length] [UTF-8 JSON payload]

That is the entire protocol — no negotiation, no compression, no
pickle (a hostile or merely version-skewed peer can send bytes, never
objects).  Both ends enforce a maximum frame size so a corrupt or
malicious length prefix cannot make the receiver allocate gigabytes.

Failure taxonomy — load-bearing for the heartbeat/requeue machinery:

* a clean EOF *between* frames (``recv() -> None``) is an orderly
  close: the peer went away at a message boundary;
* an EOF *inside* a frame, an oversize length, or an unparseable
  payload raises :class:`FrameError` — a torn/corrupt stream.  The
  pool treats both the same way (the worker is lost, its in-flight job
  requeues) but the distinction rides in the reason string that lands
  in the job store's ``requeued`` event.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Dict, Optional

#: Frames above this are refused on both send and receive.  Result
#: documents with traces run to a few MB at paper scales; 128 MiB is
#: comfortably past any legitimate payload while still bounding a
#: corrupt length prefix.
MAX_FRAME_BYTES = 128 * 1024 * 1024

_LENGTH = struct.Struct("!I")


class FrameError(RuntimeError):
    """The stream violated the framing protocol (torn/corrupt frame)."""


class FrameChannel:
    """One socket speaking length-prefixed JSON documents.

    Sends are serialized by a lock so multiple threads (the agent's
    heartbeat sender beside its job executor) can share the channel;
    receives are expected from a single reader thread.
    """

    def __init__(
        self, sock: socket.socket, *, max_frame: int = MAX_FRAME_BYTES
    ) -> None:
        self.sock = sock
        self.max_frame = int(max_frame)
        self._send_lock = threading.Lock()

    # ------------------------------------------------------------------
    def send(self, doc: Dict[str, object]) -> None:
        """Frame and send one document (raises ``OSError`` on a dead
        peer — the caller owns lost-connection handling)."""
        payload = json.dumps(doc, sort_keys=True, default=str).encode("utf-8")
        if len(payload) > self.max_frame:
            raise FrameError(
                f"refusing to send a {len(payload)}-byte frame "
                f"(max {self.max_frame})"
            )
        with self._send_lock:
            self.sock.sendall(_LENGTH.pack(len(payload)) + payload)

    def recv(self) -> Optional[Dict[str, object]]:
        """Receive one document.

        Returns ``None`` on a clean EOF at a frame boundary; raises
        :class:`FrameError` on a torn frame, an oversize or garbage
        length prefix, or an unparseable payload.  ``OSError`` (reset,
        timeout) propagates — the callers map it to worker-lost.
        """
        header = self._recv_exact(_LENGTH.size, allow_eof=True)
        if header is None:
            return None
        (length,) = _LENGTH.unpack(header)
        if length > self.max_frame:
            raise FrameError(
                f"frame length {length} exceeds the {self.max_frame}-byte "
                f"limit (corrupt or hostile prefix)"
            )
        payload = self._recv_exact(length, allow_eof=False)
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"unparseable frame payload: {exc}") from None
        if not isinstance(doc, dict):
            raise FrameError(
                f"frame payload must be a JSON object, got "
                f"{type(doc).__name__}"
            )
        return doc

    def _recv_exact(
        self, count: int, *, allow_eof: bool
    ) -> Optional[bytes]:
        chunks = []
        remaining = count
        while remaining:
            chunk = self.sock.recv(min(remaining, 1 << 20))
            if not chunk:
                if allow_eof and remaining == count:
                    return None  # EOF at a frame boundary: orderly close
                raise FrameError(
                    f"connection closed mid-frame "
                    f"({count - remaining} of {count} bytes received)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying socket (idempotent, best-effort)."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
