"""Setuptools shim.

This environment is offline and has no ``wheel`` package, so PEP 517/660
builds (which need to produce a wheel) cannot run.  Keeping a setup.py
and omitting ``[build-system]`` from pyproject.toml lets
``pip install -e .`` use the legacy ``setup.py develop`` path, which
works without wheel.  All metadata lives in pyproject.toml ([project]).
"""

from setuptools import setup

setup()
