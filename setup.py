"""Setuptools packaging for the PageRank Pipeline Benchmark reproduction.

This environment is offline and has no ``wheel`` package, so PEP 517/660
builds (which need to produce a wheel) cannot run.  Keeping all metadata
in setup.py and omitting ``[build-system]``/pyproject lets
``pip install -e .`` use the legacy ``setup.py develop`` path, which
works without wheel.

Only numpy and scipy are hard requirements (the ``scipy`` backend is the
default and the contract/validation layer uses ``scipy.sparse``).
Everything else is an extra:

* ``pandas`` — accelerates the dataframe backend (a pure-python frame
  fallback ships in :mod:`repro.frame`);
* ``graphblas`` — real SuiteSparse bindings for the graphblas backend
  (a pure-python semiring shim ships in :mod:`repro.grb`);
* ``test`` — the tier-1 test toolchain (pytest + hypothesis);
* ``bench`` — pytest-benchmark for the ``benchmarks/`` suite.
"""

from setuptools import find_packages, setup

EXTRAS = {
    "pandas": ["pandas>=1.3"],
    "graphblas": ["python-graphblas>=2023.1"],
    "test": ["pytest>=7.0", "hypothesis>=6.0"],
    "bench": ["pytest-benchmark>=4.0"],
}
#: "all" covers feature extras only; "dev" adds the test/bench tooling.
EXTRAS["all"] = sorted(EXTRAS["pandas"] + EXTRAS["graphblas"])
EXTRAS["dev"] = sorted({dep for deps in EXTRAS.values() for dep in deps})

setup(
    name="repro-pagerank-pipeline",
    version="0.2.0",
    description=(
        "Reproduction of the PageRank Pipeline Benchmark (Dreher et al., "
        "IPDPS Workshops 2016): four kernels, five backends, serial/"
        "streaming/parallel executors, and the paper's tables and figures"
    ),
    long_description=(
        "A holistic big-data system benchmark: generate a Kronecker graph "
        "(K0), sort it (K1), build the filtered adjacency matrix (K2), and "
        "run fixed-iteration PageRank (K3), reporting edges/second per "
        "kernel.  Includes a stage-graph execution layer with serial, "
        "out-of-core streaming, and shard-parallel strategies plus a "
        "content-addressed artifact cache for sweep reuse."
    ),
    long_description_content_type="text/plain",
    author="repro contributors",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    extras_require=EXTRAS,
    entry_points={
        "console_scripts": [
            "repro-pipeline = repro.cli.main:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Benchmark",
    ],
)
