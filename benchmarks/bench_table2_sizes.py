"""Table II — benchmark run sizes for scales 16-22.

Pure arithmetic (no timing-sensitive content), but kept in the bench
suite so every paper artifact has exactly one regenerating target.  The
assertions pin the table to the paper's printed rows.
"""

from __future__ import annotations

from repro.core.config import run_sizes_table
from repro.harness.tables import render_run_sizes


def test_table2_run_sizes(benchmark):
    rows = benchmark(run_sizes_table)

    assert [r.scale for r in rows] == list(range(16, 23))
    by_scale = {r.scale: r for r in rows}

    # Paper Table II, row by row (vertices, edges; memory within 5% of
    # the printed value — the paper prints 25MB/50MB/100MB/201MB/402MB/
    # 805MB/1.6GB, which implies ~24 B/edge despite the text's "16").
    expected = {
        16: (65536, 1048576, 25e6),
        17: (131072, 2097152, 50e6),
        18: (262144, 4194304, 100e6),
        19: (524288, 8388608, 201e6),
        20: (1048576, 16777216, 402e6),
        21: (2097152, 33554432, 805e6),
        22: (4194304, 67108864, 1.6e9),
    }
    for scale, (vertices, edges, memory) in expected.items():
        row = by_scale[scale]
        assert row.max_vertices == vertices
        assert row.max_edges == edges
        assert abs(row.memory_bytes - memory) / memory < 0.05

    print()
    print(render_run_sizes())
