"""Ablation — Kernel 0 generator choice.

The paper's "next steps" asks whether "a more deterministic generator
[should] be used in kernel 0 to facilitate validation".  This bench
compares the required Graph500 Kronecker against the alternatives the
paper cites (BTER, PPL) and a uniform baseline, all at the same target
edge budget.
"""

from __future__ import annotations

import pytest

from _helpers import BENCH_SCALE, EDGE_FACTOR, SEED, record_throughput

from repro.generators.registry import get_generator

GENERATORS = ["kronecker", "erdos-renyi", "ppl", "bter"]


@pytest.mark.parametrize("generator_name", GENERATORS)
def test_ablation_generator(benchmark, generator_name):
    generator = get_generator(generator_name)
    target_edges = EDGE_FACTOR << BENCH_SCALE

    u, v = benchmark.pedantic(
        lambda: generator(BENCH_SCALE, EDGE_FACTOR, seed=SEED),
        rounds=3, iterations=1,
    )
    # Kronecker/ER hit M exactly; BTER/PPL approximate the budget.
    assert 0.25 * target_edges <= len(u) <= 2.0 * target_edges
    record_throughput(benchmark, len(u))
    benchmark.extra_info["generator"] = generator_name
    benchmark.extra_info["realised_edges"] = len(u)
