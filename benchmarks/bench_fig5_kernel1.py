"""Figure 5 — Kernel 1 (read, sort by start vertex, rewrite) edges/second.

All backends sort the *same* Kernel 0 dataset (session fixture), so the
comparison isolates each implementation's read/sort/write path exactly
as the paper's per-language Figure 5 does.
"""

from __future__ import annotations

import pytest

from _helpers import BENCH_SCALE, FIGURE_BACKENDS, bench_config, record_throughput

from repro.backends.registry import get_backend
from repro.sort.inmemory import is_sorted_by_start


@pytest.mark.parametrize("backend_name", FIGURE_BACKENDS)
def test_fig5_kernel1(benchmark, tmp_path, k0_dataset, backend_name):
    config = bench_config(backend_name, num_files=4)
    backend = get_backend(backend_name)
    counter = {"i": 0}

    def run_kernel1():
        out = tmp_path / f"k1-{counter['i']}"
        counter["i"] += 1
        dataset, _ = backend.kernel1(config, k0_dataset, out)
        return dataset

    dataset = benchmark.pedantic(run_kernel1, rounds=3, iterations=1)
    u, _ = dataset.read_all()
    assert is_sorted_by_start(u)
    record_throughput(benchmark, k0_dataset.num_edges)
    benchmark.extra_info["figure"] = "fig5"
    benchmark.extra_info["scale"] = BENCH_SCALE
