"""Shared fixtures for the benchmark suite.

Scales are deliberately laptop-sized (the paper's server ran 16-22; we
default to 10 so ``pytest benchmarks/ --benchmark-only`` finishes in
minutes).  Set ``REPRO_BENCH_SCALE`` to raise the base scale.

Input datasets are built once per session and reused: benchmarks time
*kernels*, not fixture setup.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _helpers import BENCH_SCALE, EDGE_FACTOR, FIGURE_BACKENDS, SEED, bench_config

from repro.backends.registry import get_backend
from repro.edgeio.dataset import EdgeDataset
from repro.generators.kronecker import kronecker_edges


@pytest.fixture(scope="session")
def bench_edges():
    """The shared Kronecker edge list at the benchmark scale."""
    return kronecker_edges(BENCH_SCALE, EDGE_FACTOR, seed=SEED)


@pytest.fixture(scope="session")
def k0_dataset(tmp_path_factory, bench_edges):
    """A Kernel 0 output dataset shared by the Kernel 1 benchmarks."""
    u, v = bench_edges
    path = tmp_path_factory.mktemp("bench-k0") / "edges"
    return EdgeDataset.write(
        path, u, v, num_vertices=1 << BENCH_SCALE, num_shards=4
    )


@pytest.fixture(scope="session")
def k1_dataset(tmp_path_factory, k0_dataset):
    """A sorted Kernel 1 output dataset shared by Kernel 2 benchmarks."""
    config = bench_config("scipy")
    backend = get_backend("scipy")
    out_dir = tmp_path_factory.mktemp("bench-k1") / "sorted"
    dataset, _ = backend.kernel1(config, k0_dataset, out_dir)
    return dataset


@pytest.fixture(scope="session")
def k2_handles(k1_dataset):
    """Per-backend Kernel 2 outputs shared by Kernel 3 benchmarks."""
    handles = {}
    for name in FIGURE_BACKENDS:
        config = bench_config(name)
        backend = get_backend(name)
        handles[name], _ = backend.kernel2(config, k1_dataset)
    return handles
