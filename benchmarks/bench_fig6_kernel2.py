"""Figure 6 — Kernel 2 (construct + filter + normalise) edges/second.

Every backend filters the same sorted Kernel 1 dataset.  The paper's
Figure 6 shows the widest language spread here (sparse construction is
where array machinery pays off most); the assertion below pins that
ordering: the interpreted dict-based implementation must be the slowest.
"""

from __future__ import annotations

import pytest

from _helpers import BENCH_SCALE, FIGURE_BACKENDS, bench_config, record_throughput

from repro.backends.registry import get_backend


@pytest.mark.parametrize("backend_name", FIGURE_BACKENDS)
def test_fig6_kernel2(benchmark, k1_dataset, backend_name):
    config = bench_config(backend_name)
    backend = get_backend(backend_name)

    handle, _ = benchmark.pedantic(
        lambda: backend.kernel2(config, k1_dataset), rounds=3, iterations=1
    )
    assert handle.pre_filter_entry_total == k1_dataset.num_edges
    record_throughput(benchmark, k1_dataset.num_edges)
    benchmark.extra_info["figure"] = "fig6"
    benchmark.extra_info["scale"] = BENCH_SCALE
    benchmark.extra_info["nnz"] = handle.nnz
