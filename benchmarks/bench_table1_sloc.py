"""Table I — source lines of code per backend.

The paper's Table I compares implementation effort across languages.
This bench regenerates the table for this repository's backends and
checks the shape properties the paper reports: array-oriented
implementations are several times terser than the low-level one, and
the counts sit in the same order of magnitude as the paper's 102-494
range.  The timed portion (SLOC counting itself) also guards against
the analyser regressing to something pathologically slow.
"""

from __future__ import annotations

from repro.harness.sloc import backend_sloc_table
from repro.harness.tables import PAPER_TABLE1, render_sloc


def test_table1_sloc(benchmark):
    table = benchmark(backend_sloc_table)

    # --- Shape assertions against the paper -------------------------
    # 1. Same order of magnitude as the paper's per-language counts.
    for name, sloc in table.items():
        assert 50 <= sloc <= 600, f"{name}: {sloc} lines out of range"
    # 2. The lowest-level implementation costs the most lines
    #    (paper: C++ 494 vs Matlab 102; here: pure python vs the rest).
    assert table["python"] == max(table.values())
    # 3. Array backends cluster together (within 2x of each other),
    #    like the paper's Python/Julia/Matlab cluster.
    array_counts = [table[n] for n in ("numpy", "scipy", "dataframe",
                                       "graphblas")]
    assert max(array_counts) <= 2 * min(array_counts)

    print()
    print(render_sloc())
    print(f"paper reference range: {min(PAPER_TABLE1.values())}-"
          f"{max(PAPER_TABLE1.values())} lines")
