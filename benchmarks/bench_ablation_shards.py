"""Ablation — file count and file format.

"The number of files is a free parameter to be set by the implementer
or the user" (paper Sections IV.A/B); this bench quantifies the cost of
that freedom, plus the tsv-vs-binary format choice that isolates
string-formatting cost from raw I/O (the ``npy`` rows remove the text
codec entirely).
"""

from __future__ import annotations

import pytest

from _helpers import BENCH_SCALE, record_throughput

from repro.edgeio.dataset import EdgeDataset


@pytest.mark.parametrize("num_shards", [1, 4, 16, 64])
def test_ablation_shard_count_write(benchmark, tmp_path, bench_edges, num_shards):
    u, v = bench_edges
    n = 1 << BENCH_SCALE
    counter = {"i": 0}

    def write():
        out = tmp_path / f"w{num_shards}-{counter['i']}"
        counter["i"] += 1
        return EdgeDataset.write(out, u, v, num_vertices=n,
                                 num_shards=num_shards)

    dataset = benchmark.pedantic(write, rounds=3, iterations=1)
    assert dataset.num_shards == num_shards
    record_throughput(benchmark, len(u))
    benchmark.extra_info["num_shards"] = num_shards


@pytest.mark.parametrize("fmt", ["tsv", "npy", "tsv.gz"])
def test_ablation_format_write(benchmark, tmp_path, bench_edges, fmt):
    u, v = bench_edges
    n = 1 << BENCH_SCALE
    counter = {"i": 0}

    def write():
        out = tmp_path / f"f{fmt}-{counter['i']}"
        counter["i"] += 1
        return EdgeDataset.write(out, u, v, num_vertices=n, num_shards=4,
                                 fmt=fmt)

    benchmark.pedantic(write, rounds=3, iterations=1)
    record_throughput(benchmark, len(u))
    benchmark.extra_info["fmt"] = fmt


@pytest.mark.parametrize("fmt", ["tsv", "npy", "tsv.gz"])
def test_ablation_format_read(benchmark, tmp_path, bench_edges, fmt):
    u, v = bench_edges
    n = 1 << BENCH_SCALE
    dataset = EdgeDataset.write(tmp_path / f"r-{fmt}", u, v, num_vertices=n,
                                num_shards=4, fmt=fmt)

    ru, _ = benchmark(dataset.read_all)
    assert len(ru) == len(u)
    record_throughput(benchmark, len(u))
    benchmark.extra_info["fmt"] = fmt
