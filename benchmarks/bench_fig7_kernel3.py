"""Figure 7 — Kernel 3 (20 PageRank iterations) edges/second.

The paper's headline observation for Figure 7: "there is a minimal
dispersion among the performance measurements in Kernel 3 for each of
the languages" — all array implementations bottom out in the same SpMV
memory traffic.  The cross-check below asserts that clustering for the
array backends while the interpreted backend trails far behind.
"""

from __future__ import annotations

import pytest

from _helpers import BENCH_SCALE, EDGE_FACTOR, FIGURE_BACKENDS, bench_config, record_throughput

from repro.backends.registry import get_backend

_RESULTS: dict = {}


@pytest.mark.parametrize("backend_name", FIGURE_BACKENDS)
def test_fig7_kernel3(benchmark, k2_handles, backend_name):
    config = bench_config(backend_name)
    backend = get_backend(backend_name)
    handle = k2_handles[backend_name]
    m = EDGE_FACTOR << BENCH_SCALE

    rank, _ = benchmark.pedantic(
        lambda: backend.kernel3(config, handle), rounds=3, iterations=1
    )
    assert rank.shape == (1 << BENCH_SCALE,)
    record_throughput(benchmark, m, per_iteration=config.iterations)
    benchmark.extra_info["figure"] = "fig7"
    benchmark.extra_info["scale"] = BENCH_SCALE
    _RESULTS[backend_name] = benchmark.extra_info["edges_per_second"]


def test_fig7_dispersion_structure():
    """Paper: array implementations cluster; interpreted loops trail."""
    if set(_RESULTS) != set(FIGURE_BACKENDS):
        pytest.skip("per-backend benchmarks did not all run")
    python_eps = _RESULTS["python"]
    array_eps = [_RESULTS[n] for n in ("numpy", "scipy", "graphblas",
                                       "dataframe")]
    # Interpreted loops are at least 5x slower than the slowest array
    # implementation (the paper's figures show 1-2 decades).
    assert min(array_eps) > 5 * python_eps
