"""Ablation — PageRank algorithm variants on the Kernel 2 matrix.

The benchmark kernel runs 20 fixed iterations with no dangling-node
handling; the appendix names the corrected variants.  This bench
measures what each choice costs:

* fixed 20 iterations (the benchmark kernel);
* convergence-tested sink PageRank (no correction, run to 1e-8);
* strongly preferential (dangling correction, run to 1e-8);
* the paper-body formula variant (documented typo, no /N).
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import BENCH_SCALE, EDGE_FACTOR, record_throughput

from repro.pagerank.benchmark import benchmark_pagerank
from repro.pagerank.variants import (
    pagerank_sink,
    pagerank_strongly_preferential,
)


@pytest.fixture(scope="module")
def matrix(k2_handles):
    return k2_handles["scipy"].to_scipy_csr()


@pytest.fixture(scope="module")
def r0(matrix):
    n = matrix.shape[0]
    return np.full(n, 1.0 / n)


@pytest.mark.parametrize("formula", ["appendix", "paper-body"])
def test_ablation_fixed_iterations(benchmark, matrix, r0, formula):
    rank = benchmark(
        benchmark_pagerank, matrix, r0, iterations=20, formula=formula
    )
    assert np.isfinite(rank).all()
    record_throughput(benchmark, EDGE_FACTOR << BENCH_SCALE,
                      per_iteration=20)
    benchmark.extra_info["variant"] = f"fixed-20/{formula}"


def test_ablation_sink_converged(benchmark, matrix, r0):
    result = benchmark(
        pagerank_sink, matrix, initial_rank=r0, tol=1e-8,
        max_iterations=500,
    )
    assert result.converged
    record_throughput(benchmark, EDGE_FACTOR << BENCH_SCALE,
                      per_iteration=result.iterations)
    benchmark.extra_info["variant"] = "sink-converged"
    benchmark.extra_info["iterations"] = result.iterations


def test_ablation_strongly_preferential_converged(benchmark, matrix, r0):
    result = benchmark(
        pagerank_strongly_preferential, matrix, initial_rank=r0, tol=1e-8,
        max_iterations=500,
    )
    assert result.converged
    record_throughput(benchmark, EDGE_FACTOR << BENCH_SCALE,
                      per_iteration=result.iterations)
    benchmark.extra_info["variant"] = "strongly-preferential-converged"
    benchmark.extra_info["iterations"] = result.iterations
