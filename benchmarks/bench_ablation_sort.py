"""Ablation — Kernel 1 sorting algorithm choice.

The paper (Section IV.B) leaves the sort algorithm to the implementer
and notes the in-memory / out-of-core split.  This bench compares the
three in-memory algorithms and the external sort on identical input:

* ``numpy``    — comparison sort, O(M log M);
* ``counting`` — O(M + N) distribution sort exploiting the bounded keys;
* ``radix``    — O(M · digits) LSD distribution sort;
* ``external`` — run generation + k-way merge with bounded memory.
"""

from __future__ import annotations

import pytest

from _helpers import BENCH_SCALE, record_throughput

from repro.edgeio.dataset import EdgeDataset
from repro.sort.external import ExternalSortConfig, external_sort_dataset
from repro.sort.inmemory import sort_edges


@pytest.mark.parametrize("algorithm", ["numpy", "counting", "radix"])
def test_ablation_inmemory_sort(benchmark, bench_edges, algorithm):
    u, v = bench_edges
    n = 1 << BENCH_SCALE

    sorted_u, _ = benchmark(
        sort_edges, u, v, algorithm=algorithm, num_vertices=n
    )
    assert sorted_u[0] <= sorted_u[-1]
    record_throughput(benchmark, len(u))
    benchmark.extra_info["algorithm"] = algorithm


def test_ablation_external_sort(benchmark, tmp_path, k0_dataset):
    counter = {"i": 0}

    def run_external():
        out = tmp_path / f"ext-{counter['i']}"
        counter["i"] += 1
        return external_sort_dataset(
            k0_dataset, out,
            config=ExternalSortConfig(
                batch_edges=max(k0_dataset.num_edges // 8, 1024)
            ),
        )

    dataset = benchmark.pedantic(run_external, rounds=3, iterations=1)
    assert dataset.num_edges == k0_dataset.num_edges
    record_throughput(benchmark, k0_dataset.num_edges)
    benchmark.extra_info["algorithm"] = "external"
