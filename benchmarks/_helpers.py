"""Shared constants and helpers for the benchmark suite.

Kept outside conftest.py so bench modules can import them directly
(`from _helpers import ...` — the benchmarks directory is on sys.path
while pytest collects it).
"""

from __future__ import annotations

import os

from repro.core.config import PipelineConfig

#: Base scale for kernel benchmarks (override with REPRO_BENCH_SCALE).
#: The paper used 16-22 on a server; 10 keeps the suite laptop-friendly.
BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "10"))
#: Edge factor fixed by the paper.
EDGE_FACTOR = 16
#: Backends compared in the figure benchmarks (the paper's "languages").
FIGURE_BACKENDS = ["python", "numpy", "scipy", "dataframe", "graphblas"]

SEED = 20160523


def bench_config(backend: str, **overrides) -> PipelineConfig:
    """Standard benchmark config for one backend."""
    params = dict(scale=BENCH_SCALE, edge_factor=EDGE_FACTOR, seed=SEED,
                  backend=backend)
    params.update(overrides)
    return PipelineConfig(**params)


def record_throughput(benchmark, edges: int, *, per_iteration: int = 1) -> None:
    """Attach the paper's edges/second metric to a benchmark result."""
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["edges"] = edges
    benchmark.extra_info["edges_per_second"] = (
        per_iteration * edges / seconds if seconds > 0 else float("inf")
    )
