"""Figure 4 — Kernel 0 (generate + write) edges/second per backend.

The paper measures each language's Kernel 0 at scales 16-22 on a Xeon +
Lustre testbed; we measure each backend at ``BENCH_SCALE`` on local
disk.  Absolute numbers differ; the *structure* matches the paper:
Kernel 0 is I/O-and-formatting bound, so the implementation spread is
narrower than in the compute-bound kernels, with the interpreted-loop
implementation at the bottom of the band.
"""

from __future__ import annotations

import pytest

from _helpers import BENCH_SCALE, FIGURE_BACKENDS, bench_config, record_throughput

from repro.backends.registry import get_backend


@pytest.mark.parametrize("backend_name", FIGURE_BACKENDS)
def test_fig4_kernel0(benchmark, tmp_path, backend_name):
    config = bench_config(backend_name, num_files=4)
    backend = get_backend(backend_name)
    counter = {"i": 0}

    def run_kernel0():
        out = tmp_path / f"k0-{counter['i']}"
        counter["i"] += 1
        dataset, _ = backend.kernel0(config, out)
        return dataset

    dataset = benchmark.pedantic(run_kernel0, rounds=3, iterations=1)
    assert dataset.num_edges == config.num_edges
    record_throughput(benchmark, config.num_edges)
    benchmark.extra_info["figure"] = "fig4"
    benchmark.extra_info["scale"] = BENCH_SCALE
