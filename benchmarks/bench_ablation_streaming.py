"""Ablation — in-memory vs streaming (out-of-core) Kernel 2.

Quantifies what bounded memory costs: the streaming Kernel 2 makes two
passes (dedup+spill, filter+assemble) instead of one in-memory pass.
The paper's scalability story (Section IV.C: Kernel 2 can be "memory
limited") motivates having this path at all.
"""

from __future__ import annotations

import pytest

from _helpers import BENCH_SCALE, bench_config, record_throughput

from repro.backends.registry import get_backend
from repro.core.streaming import streaming_kernel2


def test_ablation_k2_in_memory(benchmark, k1_dataset):
    config = bench_config("scipy")
    backend = get_backend("scipy")

    handle, _ = benchmark.pedantic(
        lambda: backend.kernel2(config, k1_dataset), rounds=3, iterations=1
    )
    assert handle.pre_filter_entry_total == k1_dataset.num_edges
    record_throughput(benchmark, k1_dataset.num_edges)
    benchmark.extra_info["variant"] = "in-memory"


@pytest.mark.parametrize("batch_divisor", [4, 16])
def test_ablation_k2_streaming(benchmark, k1_dataset, batch_divisor):
    batch_edges = max(k1_dataset.num_edges // batch_divisor, 256)

    result = benchmark.pedantic(
        lambda: streaming_kernel2(k1_dataset, batch_edges=batch_edges),
        rounds=3, iterations=1,
    )
    assert result.pre_filter_entry_total == k1_dataset.num_edges
    record_throughput(benchmark, k1_dataset.num_edges)
    benchmark.extra_info["variant"] = f"streaming/M÷{batch_divisor}"
    benchmark.extra_info["batches"] = result.batches
    benchmark.extra_info["scale"] = BENCH_SCALE
