"""Parallel decomposition bench — measured traffic vs the alpha-beta model.

The paper (Sections IV.C/D) analyses the parallel pipeline with simple
communication models and predicts Kernel 3 becomes network-dominated.
This bench runs the simulated-rank K2+K3 at several group sizes, checks
the measured allreduce bytes against the closed form the model assumes,
and times the simulation itself (which bounds the bookkeeping overhead
of the substrate).
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import BENCH_SCALE, EDGE_FACTOR, record_throughput

from repro.parallel import run_parallel_pipeline
from repro.perfmodel import LAPTOP_CLASS, predict_parallel_kernel3

ITERATIONS = 10


@pytest.mark.parametrize("ranks", [1, 2, 4])
def test_parallel_k2_k3(benchmark, bench_edges, ranks):
    u, v = bench_edges
    n = 1 << BENCH_SCALE

    result = benchmark.pedantic(
        lambda: run_parallel_pipeline(
            u, v, n, num_ranks=ranks, iterations=ITERATIONS,
            initial_rank=np.full(n, 1.0 / n),
        ),
        rounds=3, iterations=1,
    )

    # Closed-form traffic check (naive allreduce algorithm):
    # (ITERATIONS K3 + 1 K2) vector allreduces of 8n bytes + 1 scalar.
    if ranks > 1:
        expected = 2 * (ranks - 1) * ((ITERATIONS + 1) * 8 * n + 8)
        assert result.traffic["bytes_by_op"]["allreduce"] == expected

    record_throughput(benchmark, EDGE_FACTOR << BENCH_SCALE,
                      per_iteration=ITERATIONS)
    benchmark.extra_info["ranks"] = ranks
    benchmark.extra_info["traffic_bytes"] = result.traffic.get("total_bytes", 0)

    prediction = predict_parallel_kernel3(
        LAPTOP_CLASS, EDGE_FACTOR << BENCH_SCALE, n, ranks,
        iterations=ITERATIONS,
    )
    benchmark.extra_info["model_edges_per_second"] = prediction.edges_per_second
    benchmark.extra_info["model_dominant_term"] = max(
        prediction.terms, key=prediction.terms.get
    )
