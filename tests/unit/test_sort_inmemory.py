"""Unit tests for the in-memory sorts (Kernel 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sort.inmemory import (
    counting_sort_edges,
    is_sorted_by_start,
    numpy_sort_edges,
    radix_sort_edges,
    sort_edges,
)

ALGORITHMS = ["numpy", "counting", "radix"]


def _random_edges(rng, m=500, n=64):
    u = rng.integers(0, n, size=m).astype(np.int64)
    v = rng.integers(0, n, size=m).astype(np.int64)
    return u, v


class TestIsSorted:
    def test_empty_and_single(self):
        assert is_sorted_by_start(np.array([], dtype=np.int64))
        assert is_sorted_by_start(np.array([5]))

    def test_detects_order(self):
        assert is_sorted_by_start(np.array([1, 1, 2, 9]))
        assert not is_sorted_by_start(np.array([2, 1]))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestAllAlgorithms:
    def test_sorts_by_start_vertex(self, algorithm, rng):
        u, v = _random_edges(rng)
        su, sv = sort_edges(u, v, algorithm=algorithm, num_vertices=64)
        assert is_sorted_by_start(su)

    def test_preserves_edge_multiset(self, algorithm, rng):
        u, v = _random_edges(rng)
        su, sv = sort_edges(u, v, algorithm=algorithm, num_vertices=64)
        before = np.sort(u * 64 + v)
        after = np.sort(su * 64 + sv)
        assert np.array_equal(before, after)

    def test_empty_input(self, algorithm):
        empty = np.array([], dtype=np.int64)
        su, sv = sort_edges(empty, empty.copy(), algorithm=algorithm,
                            num_vertices=4)
        assert len(su) == 0

    def test_already_sorted_unchanged_keys(self, algorithm):
        u = np.array([0, 1, 2, 3], dtype=np.int64)
        v = np.array([3, 2, 1, 0], dtype=np.int64)
        su, sv = sort_edges(u, v, algorithm=algorithm, num_vertices=4)
        assert np.array_equal(su, u)
        assert np.array_equal(sv, v)

    def test_all_equal_keys(self, algorithm):
        u = np.zeros(10, dtype=np.int64)
        v = np.arange(10, dtype=np.int64)
        su, sv = sort_edges(u, v, algorithm=algorithm, num_vertices=4)
        assert np.array_equal(np.sort(sv), np.arange(10))

    def test_by_end_vertex_lexicographic(self, algorithm, rng):
        u, v = _random_edges(rng, m=300, n=16)
        su, sv = sort_edges(u, v, algorithm=algorithm, num_vertices=16,
                            by_end_vertex=True)
        keys = su * 16 + sv
        assert np.all(np.diff(keys) >= 0)

    def test_agrees_with_numpy_reference(self, algorithm, rng):
        if algorithm == "numpy":
            pytest.skip("reference itself")
        u, v = _random_edges(rng, m=400, n=32)
        ref_u, _ = numpy_sort_edges(u, v)
        got_u, _ = sort_edges(u, v, algorithm=algorithm, num_vertices=32)
        assert np.array_equal(ref_u, got_u)


class TestStability:
    def test_numpy_stable(self):
        u = np.array([1, 0, 1, 0], dtype=np.int64)
        v = np.array([10, 20, 30, 40], dtype=np.int64)
        _, sv = numpy_sort_edges(u, v, stable=True)
        assert np.array_equal(sv, [20, 40, 10, 30])

    def test_counting_stable(self):
        u = np.array([1, 0, 1, 0], dtype=np.int64)
        v = np.array([10, 20, 30, 40], dtype=np.int64)
        _, sv = counting_sort_edges(u, v, num_vertices=2)
        assert np.array_equal(sv, [20, 40, 10, 30])

    def test_radix_stable(self):
        u = np.array([1, 0, 1, 0], dtype=np.int64)
        v = np.array([10, 20, 30, 40], dtype=np.int64)
        _, sv = radix_sort_edges(u, v)
        assert np.array_equal(sv, [20, 40, 10, 30])


class TestValidation:
    def test_counting_needs_num_vertices(self):
        u = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError, match="num_vertices"):
            sort_edges(u, u.copy(), algorithm="counting")

    def test_counting_rejects_out_of_range(self):
        u = np.array([9], dtype=np.int64)
        with pytest.raises(ValueError, match="outside"):
            counting_sort_edges(u, u.copy(), num_vertices=4)

    def test_radix_rejects_negative(self):
        u = np.array([-1], dtype=np.int64)
        with pytest.raises(ValueError, match="non-negative"):
            radix_sort_edges(u, u.copy())

    def test_radix_digit_bits_bounds(self):
        u = np.array([1], dtype=np.int64)
        with pytest.raises(ValueError):
            radix_sort_edges(u, u.copy(), digit_bits=30)

    def test_unknown_algorithm(self):
        u = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError, match="unknown sort algorithm"):
            sort_edges(u, u.copy(), algorithm="quantum")


class TestRadixWideKeys:
    def test_keys_beyond_one_digit(self, rng):
        u = rng.integers(0, 2**40, size=200).astype(np.int64)
        v = rng.integers(0, 100, size=200).astype(np.int64)
        su, sv = radix_sort_edges(u, v, digit_bits=11)
        assert np.all(np.diff(su) >= 0)
        assert np.array_equal(np.sort(u), su)
