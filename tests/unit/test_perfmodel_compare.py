"""Unit tests for the model-vs-measured comparison machinery."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.perfmodel import LAPTOP_CLASS
from repro.perfmodel.compare import (
    compare_run,
    extrapolation_study,
    render_comparison,
)


@pytest.fixture(scope="module")
def measured_run():
    return run_pipeline(PipelineConfig(scale=7, seed=2, backend="scipy"),
                        verify=False)


class TestCompareRun:
    def test_covers_all_kernels(self, measured_run):
        comparisons = compare_run(measured_run, LAPTOP_CLASS)
        assert [c.kernel for c in comparisons] == [
            "k0-generate", "k1-sort", "k2-filter", "k3-pagerank",
        ]

    def test_error_factor_at_least_one(self, measured_run):
        for comparison in compare_run(measured_run, LAPTOP_CLASS):
            assert comparison.error_factor >= 1.0

    def test_dominant_terms_named(self, measured_run):
        terms = {c.dominant_term for c in compare_run(measured_run,
                                                      LAPTOP_CLASS)}
        assert terms <= {"storage_write", "storage_read", "generate_memory",
                         "format_scalar", "parse_scalar", "sort_memory",
                         "construct_memory", "spmv_memory"}

    def test_render_table(self, measured_run):
        text = render_comparison(compare_run(measured_run, LAPTOP_CLASS))
        assert "k3-pagerank" in text
        assert "model bottleneck" in text


class TestExtrapolation:
    def test_calibrated_prediction_reasonable(self):
        # Timing-derived: bounds are deliberately loose so scheduler
        # noise on a loaded CI box cannot flake the test — the point is
        # "same decade", which is all the paper's simple models claim.
        study = extrapolation_study(
            calibration_scale=8, predicted_scales=[9], seed=2,
        )
        assert study.worst_error() < 30.0
        assert 9 in study.comparisons
        assert len(study.comparisons[9]) == 4

    def test_calibration_is_exact_on_its_own_run(self, measured_run):
        # Deterministic by construction: calibrating on a run and
        # comparing the model against that same run pins Kernel 3's
        # error factor to ~1 (no second measurement involved).
        from repro.perfmodel.calibrate import calibrate_from_run

        hw = calibrate_from_run(measured_run, LAPTOP_CLASS)
        k3 = compare_run(measured_run, hw)[3]
        assert k3.kernel == "k3-pagerank"
        assert k3.error_factor < 1.05
