"""Unit tests for repro._util.checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.checks import (
    check_dtype,
    check_in_range,
    check_nonneg_int,
    check_positive_int,
    check_probability,
    check_same_length,
)


class TestPositiveInt:
    def test_accepts_python_and_numpy_ints(self):
        assert check_positive_int("n", 3) == 3
        assert check_positive_int("n", np.int64(5)) == 5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="n must be >= 1"):
            check_positive_int("n", 0)
        with pytest.raises(ValueError):
            check_positive_int("n", -2)

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)
        with pytest.raises(TypeError):
            check_positive_int("n", 1.5)

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive_int("my_param", 0)


class TestNonnegInt:
    def test_accepts_zero(self):
        assert check_nonneg_int("n", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonneg_int("n", -1)


class TestProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_probability("p", "half")


class TestInRange:
    def test_bounds_inclusive(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 2.5, 1.0, 2.0)


class TestSameLength:
    def test_passes_equal(self):
        check_same_length("a", [1, 2], "b", [3, 4])

    def test_rejects_unequal_with_both_names(self):
        with pytest.raises(ValueError, match="alpha and beta"):
            check_same_length("alpha", [1], "beta", [1, 2])


class TestDtype:
    def test_accepts_matching_kind(self):
        arr = np.zeros(3, dtype=np.int64)
        assert check_dtype("a", arr, "i") is arr

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="dtype kind"):
            check_dtype("a", np.zeros(3), "i")

    def test_rejects_non_array(self):
        with pytest.raises(TypeError):
            check_dtype("a", [1, 2], "i")
