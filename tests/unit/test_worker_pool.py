"""Worker pools: thread/process parity, crash isolation, lifecycle."""

from __future__ import annotations

import pytest

from repro.api import RunSpec
from repro.service.pool import (
    WORKER_KINDS,
    ProcessWorkerPool,
    RemoteJobError,
    ThreadWorkerPool,
    WorkerCrashError,
    make_worker_pool,
)
from repro.service.worker import outcome_payload, run_spec_job

SPEC = RunSpec(scale=6, backend="numpy")

#: Payload fields whose values must be identical across worker kinds
#: (timings are wall-clock and therefore excluded).
def _comparable(payload):
    return {
        "rank_sha256": payload["rank_sha256"],
        "rank_summary": payload["rank_summary"],
        "records": [
            {k: v for k, v in record.items()
             if k not in ("seconds", "edges_per_second")}
            for record in payload["records"]
        ],
    }


class TestThreadWorkerPool:
    def test_payload_and_outcome(self):
        pool = ThreadWorkerPool(2)
        payload, outcome = pool.run_spec(SPEC.to_dict(), None)
        assert outcome is not None
        assert payload == outcome_payload(outcome)
        assert payload["rank_sha256"] == outcome.rank_digest
        assert len(payload["records"]) == 4
        pool.shutdown()

    def test_matches_run_spec_job(self):
        pool = ThreadWorkerPool(1)
        payload, _ = pool.run_spec(SPEC.to_dict(), None)
        assert _comparable(payload) == _comparable(
            run_spec_job(SPEC.to_dict(), None)
        )


class TestProcessWorkerPool:
    def test_process_payload_bit_identical_to_thread(self):
        """The acceptance bar for the pool layer: a spec shipped to a
        worker process as JSON returns the same result document (rank
        digest, records modulo timing) as in-process execution."""
        process_pool = ProcessWorkerPool(1)
        try:
            via_process, outcome = process_pool.run_spec(SPEC.to_dict(), None)
        finally:
            process_pool.shutdown()
        assert outcome is None  # the rank vector stays in the worker
        via_thread, _ = ThreadWorkerPool(1).run_spec(SPEC.to_dict(), None)
        assert _comparable(via_process) == _comparable(via_thread)

    def test_worker_is_reused_across_jobs(self):
        pool = ProcessWorkerPool(1)
        try:
            pool.run_spec(SPEC.to_dict(), None)
            pid_first = pool._handles[0].process.pid
            pool.run_spec(SPEC.with_overrides(seed=2).to_dict(), None)
            assert pool._handles[0].process.pid == pid_first
            assert len(pool._handles) == 1
        finally:
            pool.shutdown()

    def test_remote_failure_carries_original_type_name(self):
        pool = ProcessWorkerPool(1)
        bad = RunSpec(scale=6, backend="graphblas", execution="parallel")
        try:
            with pytest.raises(RemoteJobError) as excinfo:
                pool.run_spec(bad.to_dict(), None)
            assert excinfo.value.error_type == "ExecutorCapabilityError"
            assert "parallel" in str(excinfo.value)
            # The pool survives a job failure: the worker is reusable.
            payload, _ = pool.run_spec(SPEC.to_dict(), None)
            assert payload["rank_sha256"]
        finally:
            pool.shutdown()

    def test_killed_worker_is_replaced(self):
        pool = ProcessWorkerPool(1)
        try:
            pool.run_spec(SPEC.to_dict(), None)
            victim = pool._handles[0]
            victim.process.terminate()
            victim.process.join(timeout=10)
            with pytest.raises(WorkerCrashError):
                # The dead worker is detected at checkout and replaced;
                # force the crash path by talking to the corpse.
                victim.run(SPEC.to_dict(), None)
            payload, _ = pool.run_spec(SPEC.to_dict(), None)
            assert payload["rank_sha256"]
            assert pool._handles[-1].process.pid != victim.process.pid
        finally:
            pool.shutdown()

    def test_unexpected_run_error_returns_the_slot(self):
        """Any exception escaping a worker conversation must give the
        slot token back — a leaked token shrinks the pool forever."""
        pool = ProcessWorkerPool(1)
        try:
            pool.run_spec(SPEC.to_dict(), None)
            victim = pool._handles[0]
            original_run = victim.run
            victim.run = lambda *a: (_ for _ in ()).throw(
                ValueError("malformed reply")
            )
            with pytest.raises(ValueError, match="malformed reply"):
                pool.run_spec(SPEC.to_dict(), None)
            victim.run = original_run
            # The slot came back (a fresh worker spawns on demand).
            payload, _ = pool.run_spec(SPEC.to_dict(), None)
            assert payload["rank_sha256"]
        finally:
            pool.shutdown()

    def test_terminate_refuses_new_work(self):
        pool = ProcessWorkerPool(1)
        pool.run_spec(SPEC.to_dict(), None)
        handles = list(pool._handles)
        pool.terminate()
        with pytest.raises(WorkerCrashError, match="terminated"):
            pool.run_spec(SPEC.to_dict(), None)
        for handle in handles:
            handle.process.join(timeout=10)
            assert not handle.process.is_alive()

    def test_shutdown_stops_worker_processes(self):
        pool = ProcessWorkerPool(2)
        pool.run_spec(SPEC.to_dict(), None)
        handles = list(pool._handles)
        assert handles
        pool.shutdown()
        for handle in handles:
            assert not handle.process.is_alive()


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_worker_pool("thread", 1), ThreadWorkerPool)
        pool = make_worker_pool("process", 1)
        assert isinstance(pool, ProcessWorkerPool)
        pool.shutdown()
        assert set(WORKER_KINDS) == {"thread", "process", "remote"}

    def test_remote_kind(self):
        from repro.service.remote import RemoteWorkerPool

        pool = make_worker_pool("remote", 1, port=0)
        try:
            assert isinstance(pool, RemoteWorkerPool)
            assert pool.address[1] > 0
        finally:
            pool.shutdown()

    def test_remote_options_refused_for_local_kinds(self):
        with pytest.raises(ValueError, match="remote"):
            make_worker_pool("thread", 1, heartbeat_timeout=5.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="worker_kind"):
            make_worker_pool("fiber", 1)
