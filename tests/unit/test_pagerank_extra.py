"""Unit tests for Gauss-Seidel PageRank and rank-comparison utilities."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.pagerank.compare import (
    kendall_tau,
    rank_displacement,
    spearman_rho,
    top_k,
    top_k_overlap,
)
from repro.pagerank.gauss_seidel import pagerank_gauss_seidel
from repro.pagerank.variants import pagerank_strongly_preferential


def _random_normalised(rng, n=25, density=0.25):
    mask = rng.random((n, n)) < density
    counts = mask * rng.integers(1, 4, (n, n))
    dout = counts.sum(axis=1)
    return sp.csr_matrix(
        counts / np.where(dout[:, None] > 0, dout[:, None], 1.0)
    )


class TestGaussSeidel:
    def test_matches_power_iteration(self, rng):
        a = _random_normalised(rng)
        gs = pagerank_gauss_seidel(a, tol=1e-12)
        power = pagerank_strongly_preferential(a, tol=1e-13)
        assert gs.converged
        assert np.allclose(gs.rank, power.rank, atol=1e-9)

    def test_fewer_iterations_than_power(self, rng):
        a = _random_normalised(rng, n=40)
        gs = pagerank_gauss_seidel(a, tol=1e-10)
        power = pagerank_strongly_preferential(a, tol=1e-10)
        assert gs.iterations < power.iterations

    def test_unit_mass(self, rng):
        a = _random_normalised(rng)
        result = pagerank_gauss_seidel(a, tol=1e-12)
        assert result.rank.sum() == pytest.approx(1.0)

    def test_handles_self_loops(self):
        dense = np.array([[0.5, 0.5], [0.0, 1.0]])
        a = sp.csr_matrix(dense)
        gs = pagerank_gauss_seidel(a, tol=1e-13)
        power = pagerank_strongly_preferential(a, tol=1e-14)
        assert np.allclose(gs.rank, power.rank, atol=1e-8)

    def test_handles_all_dangling(self):
        a = sp.csr_matrix((3, 3))
        result = pagerank_gauss_seidel(a, tol=1e-12)
        assert np.allclose(result.rank, 1.0 / 3)

    def test_iteration_cap(self, rng):
        a = _random_normalised(rng)
        result = pagerank_gauss_seidel(a, tol=1e-30, max_iterations=2)
        assert not result.converged
        assert result.iterations == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="square"):
            pagerank_gauss_seidel(sp.csr_matrix((2, 3)))
        a = _random_normalised(rng)
        with pytest.raises(ValueError, match="all-zero"):
            pagerank_gauss_seidel(a, initial_rank=np.zeros(25))


class TestTopK:
    def test_orders_descending(self):
        rank = np.array([0.1, 0.4, 0.2, 0.3])
        assert top_k(rank, 2).tolist() == [1, 3]

    def test_ties_broken_by_id(self):
        rank = np.array([0.5, 0.5, 0.5])
        assert top_k(rank, 3).tolist() == [0, 1, 2]

    def test_k_larger_than_n(self):
        assert len(top_k(np.array([1.0, 2.0]), 10)) == 2

    def test_overlap_bounds(self):
        a = np.array([4.0, 3.0, 2.0, 1.0])
        b = np.array([1.0, 2.0, 3.0, 4.0])
        assert top_k_overlap(a, a, 2) == 1.0
        assert top_k_overlap(a, b, 2) == 0.0
        assert top_k_overlap(a, b, 4) == 1.0


class TestCorrelations:
    def test_identical_rankings(self, rng):
        rank = rng.random(50)
        assert kendall_tau(rank, rank) == pytest.approx(1.0)
        assert spearman_rho(rank, rank) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        a = np.arange(20, dtype=float)
        assert kendall_tau(a, -a) == pytest.approx(-1.0)
        assert spearman_rho(a, -a) == pytest.approx(-1.0)

    def test_shape_guard(self):
        with pytest.raises(ValueError, match="shape"):
            kendall_tau(np.zeros(3), np.zeros(4))


class TestDisplacement:
    def test_identical_is_zero(self, rng):
        rank = rng.random(30)
        summary = rank_displacement(rank, rank)
        assert summary.max_displacement == 0
        assert summary.unchanged_fraction == 1.0

    def test_swap_two_adjacent(self):
        a = np.array([4.0, 3.0, 2.0, 1.0])
        b = np.array([3.0, 4.0, 2.0, 1.0])
        summary = rank_displacement(a, b)
        assert summary.max_displacement == 1
        assert summary.unchanged_fraction == 0.5

    def test_full_reversal(self):
        a = np.arange(5, dtype=float)
        summary = rank_displacement(a, -a)
        assert summary.max_displacement == 4
