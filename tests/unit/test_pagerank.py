"""Unit tests for the PageRank library (benchmark kernel + variants)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.pagerank.benchmark import benchmark_pagerank, iteration_operator
from repro.pagerank.dense import dense_power_iteration, google_matrix
from repro.pagerank.validate import (
    ValidationReport,
    dominant_eigenvalue,
    spectral_rank,
    validate_rank,
)
from repro.pagerank.variants import (
    pagerank_converged,
    pagerank_sink,
    pagerank_strongly_preferential,
    pagerank_weakly_preferential,
)


def _ring_matrix(n: int) -> sp.csr_matrix:
    """Row-stochastic directed ring: PageRank is exactly uniform."""
    rows = np.arange(n)
    cols = (rows + 1) % n
    return sp.csr_matrix((np.ones(n), (rows, cols)), shape=(n, n))


class TestBenchmarkPagerank:
    def test_ring_fixed_point_is_uniform(self):
        a = _ring_matrix(8)
        r0 = np.random.default_rng(0).random(8)
        r = benchmark_pagerank(a, r0, iterations=200)
        assert np.allclose(r, 1.0 / 8, atol=1e-6)

    def test_mass_conserved_on_stochastic_matrix(self):
        a = _ring_matrix(5)
        r = benchmark_pagerank(a, np.full(5, 0.2), iterations=20)
        assert r.sum() == pytest.approx(1.0)

    def test_mass_leaks_with_dangling_rows(self, toy_matrix):
        # Make row 1 dangling.
        dense = toy_matrix.toarray()
        dense[1, :] = 0.0
        a = sp.csr_matrix(dense)
        r = benchmark_pagerank(a, np.full(3, 1 / 3), iterations=20)
        assert r.sum() < 1.0

    def test_matches_dense_power_iteration_direction(self, toy_matrix):
        r = benchmark_pagerank(toy_matrix, np.full(3, 1 / 3), iterations=500)
        g = google_matrix(toy_matrix, 0.85)
        dense, _, _ = dense_power_iteration(g)
        assert np.allclose(r / np.abs(r).sum(), dense, atol=1e-9)

    def test_paper_body_formula_differs(self, toy_matrix):
        r0 = np.full(3, 1 / 3)
        with_n = benchmark_pagerank(toy_matrix, r0, iterations=5,
                                    formula="appendix")
        without_n = benchmark_pagerank(toy_matrix, r0, iterations=5,
                                       formula="paper-body")
        # The body-text formula omits /N, inflating the teleport term.
        assert without_n.sum() > with_n.sum()

    def test_initial_rank_normalised(self, toy_matrix):
        r_scaled = benchmark_pagerank(toy_matrix, np.array([2.0, 2.0, 2.0]),
                                      iterations=3)
        r_unit = benchmark_pagerank(toy_matrix, np.full(3, 1 / 3),
                                    iterations=3)
        assert np.allclose(r_scaled, r_unit)

    def test_validation_errors(self, toy_matrix):
        with pytest.raises(ValueError, match="square"):
            benchmark_pagerank(sp.csr_matrix((2, 3)), np.zeros(2))
        with pytest.raises(ValueError, match="shape"):
            benchmark_pagerank(toy_matrix, np.zeros(5))
        with pytest.raises(ValueError, match="all-zero"):
            benchmark_pagerank(toy_matrix, np.zeros(3))
        with pytest.raises(ValueError, match="formula"):
            benchmark_pagerank(toy_matrix, np.full(3, 1 / 3), formula="x")

    def test_iteration_operator_matches_update(self, toy_matrix):
        op = iteration_operator(toy_matrix, 0.85)
        x = np.array([0.2, 0.3, 0.5])
        expected = 0.85 * (toy_matrix.T @ x) + 0.15 / 3 * x.sum()
        assert np.allclose(op @ x, expected)


class TestVariants:
    @pytest.fixture
    def dangling_matrix(self):
        # 0 -> 1, 1 -> {0, 2}, 2 dangles.
        dense = np.array(
            [[0.0, 1.0, 0.0], [0.5, 0.0, 0.5], [0.0, 0.0, 0.0]]
        )
        return sp.csr_matrix(dense)

    def test_strongly_preferential_conserves_mass(self, dangling_matrix):
        res = pagerank_strongly_preferential(dangling_matrix, tol=1e-12)
        assert res.converged
        assert res.rank.sum() == pytest.approx(1.0, abs=1e-9)

    def test_weakly_equals_strongly_when_distributions_match(self, dangling_matrix):
        strong = pagerank_strongly_preferential(dangling_matrix, tol=1e-13)
        weak = pagerank_weakly_preferential(
            dangling_matrix, dangling_distribution=np.full(3, 1 / 3),
            tol=1e-13,
        )
        assert np.allclose(strong.rank, weak.rank, atol=1e-10)

    def test_weakly_with_skewed_dangling_vector(self, dangling_matrix):
        skew = pagerank_weakly_preferential(
            dangling_matrix, dangling_distribution=np.array([1.0, 0.0, 0.0]),
            tol=1e-12,
        )
        uniform = pagerank_weakly_preferential(dangling_matrix, tol=1e-12)
        assert skew.rank[0] > uniform.rank[0]

    def test_sink_loses_mass_without_renormalise(self, dangling_matrix):
        res = pagerank_sink(dangling_matrix, tol=1e-12)
        assert res.rank.sum() < 1.0

    def test_sink_renormalised_unit_mass(self, dangling_matrix):
        res = pagerank_sink(dangling_matrix, tol=1e-12, renormalize=True)
        assert res.rank.sum() == pytest.approx(1.0)

    def test_personalised_teleport(self, dangling_matrix):
        teleport = np.array([0.0, 0.0, 1.0])
        res = pagerank_strongly_preferential(
            dangling_matrix, teleport=teleport, tol=1e-12
        )
        uniform = pagerank_strongly_preferential(dangling_matrix, tol=1e-12)
        assert res.rank[2] > uniform.rank[2]

    def test_converged_dispatch(self, dangling_matrix):
        for variant in ("strongly-preferential", "weakly-preferential", "sink"):
            res = pagerank_converged(dangling_matrix, variant=variant)
            assert res.converged
        with pytest.raises(ValueError, match="unknown variant"):
            pagerank_converged(dangling_matrix, variant="quantum")

    def test_iteration_cap_reported(self, dangling_matrix):
        res = pagerank_strongly_preferential(
            dangling_matrix, tol=1e-30, max_iterations=3
        )
        assert not res.converged
        assert res.iterations == 3

    def test_input_validation(self, dangling_matrix):
        with pytest.raises(ValueError, match="teleport"):
            pagerank_strongly_preferential(
                dangling_matrix, teleport=np.array([1.0, -1.0, 0.0])
            )
        with pytest.raises(ValueError, match="positive mass"):
            pagerank_strongly_preferential(
                dangling_matrix, teleport=np.zeros(3)
            )


class TestDenseOracle:
    def test_google_matrix_rows_sum_to_one_for_stochastic_input(self):
        a = _ring_matrix(4)
        g = google_matrix(a, 0.85)
        assert np.allclose(g.sum(axis=1), 1.0)

    def test_power_iteration_finds_dominant_left_eigenvector(self):
        a = _ring_matrix(6)
        g = google_matrix(a, 0.85)
        vec, eigenvalue, _ = dense_power_iteration(g)
        assert eigenvalue == pytest.approx(1.0, abs=1e-9)
        assert np.allclose(vec @ g, vec, atol=1e-9)

    def test_power_iteration_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            dense_power_iteration(np.zeros((2, 3)))


class TestValidation:
    def test_validate_converged_rank_passes_tight(self, toy_matrix):
        r = benchmark_pagerank(toy_matrix, np.full(3, 1 / 3), iterations=500)
        report = validate_rank(toy_matrix, r, tolerance=1e-6)
        assert report.passed
        assert report.cosine_similarity == pytest.approx(1.0, abs=1e-9)

    def test_validate_20_iterations_passes_paper_tolerance(self, toy_matrix):
        r = benchmark_pagerank(toy_matrix, np.array([0.7, 0.2, 0.1]),
                               iterations=20)
        assert validate_rank(toy_matrix, r).passed

    def test_validate_detects_garbage(self, toy_matrix):
        garbage = np.array([1.0, 0.0, 0.0])
        report = validate_rank(toy_matrix, garbage, tolerance=0.01)
        assert not report.passed

    def test_spectral_rank_of_ring_uniform(self):
        vec = spectral_rank(_ring_matrix(10))
        assert np.allclose(vec, 0.1, atol=1e-8)

    def test_dominant_eigenvalue_stochastic_is_one(self):
        assert dominant_eigenvalue(_ring_matrix(5)) == pytest.approx(1.0)

    def test_large_matrix_uses_arpack_path(self):
        n = 2000  # above the dense limit
        rng = np.random.default_rng(1)
        rows = np.arange(n)
        cols = (rows + 1) % n
        a = sp.csr_matrix((np.ones(n), (rows, cols)), shape=(n, n))
        vec = spectral_rank(a)
        assert np.allclose(vec, 1.0 / n, atol=1e-6)

    def test_report_serialises(self, toy_matrix):
        r = benchmark_pagerank(toy_matrix, np.full(3, 1 / 3))
        report = validate_rank(toy_matrix, r)
        assert isinstance(report, ValidationReport)
        doc = report.to_dict()
        assert set(doc) == {"l1_distance", "cosine_similarity", "eigenvalue",
                            "tolerance", "passed"}

    def test_shape_guard(self, toy_matrix):
        with pytest.raises(ValueError, match="shape"):
            validate_rank(toy_matrix, np.zeros(5))
        with pytest.raises(ValueError, match="zero 1-norm"):
            validate_rank(toy_matrix, np.zeros(3))
