"""Unit tests for the gzip-compressed TSV shard format."""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset
from repro.edgeio.errors import CorruptEdgeFileError


class TestGzipFormat:
    def test_round_trip(self, tmp_path, small_edges):
        u, v = small_edges
        EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                          num_shards=3, fmt="tsv.gz")
        ds = EdgeDataset.open(tmp_path / "d")
        assert ds.fmt == "tsv.gz"
        ru, rv = ds.read_all()
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_files_actually_compressed(self, tmp_path, small_edges):
        u, v = small_edges
        gz = EdgeDataset.write(tmp_path / "gz", u, v, num_vertices=64,
                               fmt="tsv.gz")
        plain = EdgeDataset.write(tmp_path / "plain", u, v, num_vertices=64,
                                  fmt="tsv")
        assert gz.total_bytes() < plain.total_bytes()
        payload = gz.shard_paths()[0].read_bytes()
        assert payload[:2] == b"\x1f\x8b"  # gzip magic

    def test_payload_matches_plain_tsv(self, tmp_path, small_edges):
        u, v = small_edges
        gz = EdgeDataset.write(tmp_path / "gz", u, v, num_vertices=64,
                               fmt="tsv.gz", num_shards=1)
        plain = EdgeDataset.write(tmp_path / "plain", u, v, num_vertices=64,
                                  fmt="tsv", num_shards=1)
        decompressed = gzip.decompress(gz.shard_paths()[0].read_bytes())
        assert decompressed == plain.shard_paths()[0].read_bytes()

    def test_corrupt_gzip_detected(self, tmp_path, small_edges):
        u, v = small_edges
        ds = EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                               fmt="tsv.gz")
        shard = ds.shard_paths()[0]
        payload = bytearray(shard.read_bytes())
        payload[10] ^= 0xFF
        shard.write_bytes(bytes(payload))
        reopened = EdgeDataset.open(tmp_path / "d")
        with pytest.raises(CorruptEdgeFileError):
            reopened.read_shard(0)

    def test_checksum_covers_compressed_bytes(self, tmp_path, small_edges):
        u, v = small_edges
        ds = EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                               fmt="tsv.gz")
        ds.read_shard(0, verify_checksum=True)  # must pass

    def test_stream_writer_gzip(self, tmp_path, small_edges):
        u, v = small_edges
        with EdgeDataset.stream_writer(tmp_path / "d", num_vertices=64,
                                       fmt="tsv.gz",
                                       edges_per_shard=100) as writer:
            writer.append(u, v)
        ds = writer.result
        ru, rv = ds.read_all()
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_pipeline_end_to_end(self):
        from repro.core.pipeline import run_pipeline

        gz = run_pipeline(PipelineConfig(scale=6, seed=5,
                                         file_format="tsv.gz"))
        plain = run_pipeline(PipelineConfig(scale=6, seed=5))
        assert np.allclose(gz.rank, plain.rank)

    def test_config_accepts_format(self):
        PipelineConfig(scale=4, file_format="tsv.gz")
        with pytest.raises(ValueError):
            PipelineConfig(scale=4, file_format="zip")
