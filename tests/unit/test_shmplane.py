"""Unit tests for the zero-copy shard plane.

The plane's promises: a :class:`ShardBuffer` round-trips edge arrays
bit-identically through a named segment with read-only consumer views,
ownership hand-off (``export``/adopt) moves unlink duty exactly once,
the owner registry sweeps outstanding segments on *any* exit path
(normal exit, SIGTERM), negotiation degrades ``shm`` to ``pipe`` with
one warning when no segment can be created, and :func:`mapped_view`
closes its map deterministically.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core import shmplane
from repro.core.shmplane import (
    HEADER_BYTES,
    SHARD_PLANES,
    ShardBuffer,
    ShmPlaneError,
    mapped_view,
    outstanding_segments,
    resolve_payload_via,
    shm_available,
    sweep,
)

needs_shm = pytest.mark.skipif(
    not shm_available(),
    reason="host cannot create shared-memory segments",
)

#: Environment for subprocess probes: the package must import the same
#: way it does in this process, whether via PYTHONPATH or installed.
_SRC = str(Path(shmplane.__file__).resolve().parents[2])


def _child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _edges(n=64, seed=5):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 1 << 10, n, dtype=np.int64),
        rng.integers(0, 1 << 10, n, dtype=np.int64),
    )


@needs_shm
class TestShardBuffer:
    def test_round_trip_bit_identical(self):
        u, v = _edges()
        buffer = ShardBuffer.create(u, v)
        try:
            reader = ShardBuffer.attach(buffer.name)
            ru, rv = reader.arrays()
            assert np.array_equal(ru, u) and np.array_equal(rv, v)
            reader.close()
        finally:
            buffer.release()

    def test_views_are_read_only(self):
        u, v = _edges()
        buffer = ShardBuffer.create(u, v)
        try:
            ru, rv = buffer.arrays()
            with pytest.raises(ValueError, match="read-only"):
                ru[0] = 99
            with pytest.raises(ValueError, match="read-only"):
                rv[-1] = 99
        finally:
            buffer.release()

    def test_empty_arrays_round_trip(self):
        empty = np.empty(0, dtype=np.int64)
        buffer = ShardBuffer.create(empty, empty)
        try:
            ru, rv = buffer.arrays()
            assert len(ru) == 0 and len(rv) == 0
        finally:
            buffer.release()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            ShardBuffer.attach("psm_repro_0_nonexistent")

    def test_garbage_header_rejected(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            create=True, size=HEADER_BYTES + 64, name=None
        )
        try:
            shm.buf[:HEADER_BYTES] = b"\x00" * HEADER_BYTES
            with pytest.raises(ShmPlaneError, match="not a shard buffer"):
                ShardBuffer.attach(shm.name)
        finally:
            shm.unlink()
            shm.close()

    def test_lying_lengths_rejected(self):
        u, v = _edges(8)
        buffer = ShardBuffer.create(u, v)
        try:
            header = buffer._header_view()
            header[3] = 1 << 40  # claims far more edges than the segment
            del header
            with pytest.raises(ShmPlaneError, match="declares"):
                ShardBuffer.attach(buffer.name)
        finally:
            buffer.release()

    def test_export_transfers_ownership(self):
        # Worker half: create + export; parent half: adopt + release.
        u, v = _edges(seed=7)
        name = ShardBuffer.create(u, v).export()
        assert name not in outstanding_segments()  # exporter forgot it
        adopted = ShardBuffer.attach(name, owner=True)
        assert name in outstanding_segments()
        ru, rv = adopted.arrays()
        assert np.array_equal(ru, u) and np.array_equal(rv, v)
        adopted.release()
        assert name not in outstanding_segments()
        with pytest.raises(FileNotFoundError):
            ShardBuffer.attach(name)

    def test_release_is_idempotent(self):
        buffer = ShardBuffer.create(*_edges())
        buffer.release()
        buffer.release()  # second call is a no-op, not an error
        assert buffer.name not in outstanding_segments()

    def test_reader_outlives_owner_generation_bump(self):
        # POSIX keeps the pages alive until the last map closes: a
        # reader attached before the owner bumps + releases still sees
        # a coherent (superseded) view, flagged by the generation.
        u, v = _edges(seed=9)
        owner = ShardBuffer.create(u, v)
        reader = ShardBuffer.attach(owner.name)
        assert reader.generation == 1
        assert owner.bump_generation() == 2
        assert reader.generation == 2  # same physical pages
        owner.release()
        ru, rv = reader.arrays()
        assert np.array_equal(ru, u) and np.array_equal(rv, v)
        reader.close()

    def test_nbytes_counts_payload_only(self):
        u, v = _edges(32)
        buffer = ShardBuffer.create(u, v)
        try:
            assert buffer.nbytes == 32 * 8 * 2
        finally:
            buffer.release()


@needs_shm
class TestSweep:
    def test_sweep_releases_outstanding_segments(self):
        buffer = ShardBuffer.create(*_edges())
        name = buffer.name
        assert sweep() >= 1
        assert name not in outstanding_segments()
        with pytest.raises(FileNotFoundError):
            ShardBuffer.attach(name)

    def test_owner_exit_sweeps_outstanding_segments(self, tmp_path):
        # A process that exits with live segments must not strand them:
        # the atexit sweep unlinks everything the registry still holds.
        script = tmp_path / "owner_exits.py"
        script.write_text(textwrap.dedent("""\
            import numpy as np
            from repro.core.shmplane import ShardBuffer
            edges = np.arange(32, dtype=np.int64)
            names = [ShardBuffer.create(edges, edges).name
                     for _ in range(2)]
            print("\\n".join(names), flush=True)
            # deliberately NO release: exit with both outstanding
        """))
        proc = subprocess.run(
            [sys.executable, str(script)], env=_child_env(),
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        names = proc.stdout.split()
        assert len(names) == 2
        for name in names:
            with pytest.raises(FileNotFoundError):
                ShardBuffer.attach(name)

    def test_sigterm_sweeps_outstanding_segments(self, tmp_path):
        # atexit does not run under SIGTERM's default disposition; the
        # chained handler must sweep before the process dies.
        script = tmp_path / "owner_terminated.py"
        script.write_text(textwrap.dedent("""\
            import sys, time
            import numpy as np
            from repro.core.shmplane import ShardBuffer
            edges = np.arange(32, dtype=np.int64)
            buffer = ShardBuffer.create(edges, edges)
            print(buffer.name, flush=True)
            time.sleep(60)  # parent terminates us mid-sleep
        """))
        proc = subprocess.Popen(
            [sys.executable, str(script)], env=_child_env(),
            stdout=subprocess.PIPE, text=True,
        )
        try:
            name = proc.stdout.readline().strip()
            assert name
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            proc.kill()
            proc.stdout.close()
        with pytest.raises(FileNotFoundError):
            ShardBuffer.attach(name)


class TestNegotiation:
    def test_pipe_passes_through(self):
        assert resolve_payload_via("pipe") == "pipe"

    def test_unknown_plane_rejected(self):
        with pytest.raises(ValueError, match="payload_via must be one of"):
            resolve_payload_via("carrier-pigeon")
        assert set(SHARD_PLANES) == {"pipe", "shm"}

    @needs_shm
    def test_shm_honoured_when_available(self):
        assert resolve_payload_via("shm") == "shm"

    def test_unavailable_shm_degrades_with_single_warning(self, monkeypatch):
        monkeypatch.setattr(shmplane, "shm_available", lambda: False)
        monkeypatch.setattr(shmplane, "_fallback_warned", False)
        with pytest.warns(RuntimeWarning, match="falling back to pipe"):
            assert resolve_payload_via("shm") == "pipe"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert resolve_payload_via("shm") == "pipe"

    def test_reset_hook_reprobes(self, monkeypatch):
        monkeypatch.setattr(shmplane, "_available", False)
        assert not shmplane.shm_available()
        shmplane._reset_negotiation_cache()
        shmplane.shm_available()  # reprobes without error
        assert shmplane._available is not None


class TestMappedView:
    def test_reads_the_file_and_closes_the_map(self, tmp_path):
        path = tmp_path / "spill.bin"
        data = np.arange(24, dtype=np.int64).reshape(12, 2)
        data.tofile(path)
        with mapped_view(path, np.int64, (12, 2)) as mm:
            assert np.array_equal(np.array(mm), data)
            raw = mm._mmap
        assert raw.closed  # the map died with the context, not with GC
        path.unlink()  # deletable immediately — nothing holds the file

    def test_copies_survive_the_close(self, tmp_path):
        path = tmp_path / "spill.bin"
        np.arange(10, dtype=np.float64).tofile(path)
        with mapped_view(path, np.float64, (10,)) as mm:
            copied = np.array(mm[3:7])
        assert np.array_equal(copied, np.arange(3.0, 7.0))

    def test_writable_mode(self, tmp_path):
        path = tmp_path / "spill.bin"
        np.zeros(4, dtype=np.int64).tofile(path)
        with mapped_view(path, np.int64, (4,), mode="r+") as mm:
            mm[:] = 7
            mm.flush()
        assert np.array_equal(
            np.fromfile(path, dtype=np.int64), np.full(4, 7)
        )


@needs_shm
class TestNoLeaks:
    def test_no_outstanding_segments_after_suite(self):
        # Every test above released what it created; the registry must
        # agree, and (on hosts that expose it) /dev/shm must hold no
        # segment named with this process's pid.
        import gc
        import glob

        gc.collect()
        assert outstanding_segments() == ()
        if os.path.isdir("/dev/shm"):
            mine = glob.glob(f"/dev/shm/psm_repro_{os.getpid()}_*")
            assert mine == [], f"leaked segments: {mine}"
