"""RunSpec/SweepSpec: round-trips, strictness, versioning, bridging."""

from __future__ import annotations

import json

import pytest

from repro.api.spec import (
    CACHE_POLICIES,
    SPEC_VERSION,
    VALIDATION_MODES,
    RunSpec,
    SweepSpec,
)
from repro.core.config import PipelineConfig


class TestRunSpecRoundTrip:
    def test_dict_round_trip_defaults(self):
        spec = RunSpec(scale=8)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_every_field_nondefault(self):
        spec = RunSpec(
            scale=9, edge_factor=8, seed=3, num_files=2, backend="numpy",
            generator="kronecker", damping=0.9, iterations=7,
            vertex_base=1, file_format="npy", sort_algorithm="counting",
            sort_by_end_vertex=True, external_sort=True,
            formula="paper-body", execution="parallel", parallel_ranks=3,
            parallel_executor="mp", streaming_batch_edges=1 << 10,
            async_lanes="process", shard_plane="shm", cache_mmap=True,
            data_dir="/tmp/somewhere", repeats=2,
            cache_policy="off", validation="full",
        )
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_to_dict_is_json_safe(self):
        json.dumps(RunSpec(scale=8, data_dir="/tmp/x").to_dict())

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RunSpec field.*bogus"):
            RunSpec.from_dict({"scale": 6, "bogus": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            RunSpec.from_dict([1, 2])  # type: ignore[arg-type]


class TestRunSpecVersioning:
    def test_v1_document_migrates(self):
        # v1 carried a boolean `validate` and no spec_version stamping
        # of the three-state `validation`.
        spec = RunSpec.from_dict(
            {"scale": 6, "validate": True, "spec_version": 1}
        )
        assert spec.validation == "full"
        assert spec.spec_version == SPEC_VERSION

    def test_v1_without_version_stamp_migrates(self):
        spec = RunSpec.from_dict({"scale": 6, "validate": False})
        assert spec.validation == "contracts"

    def test_future_version_refused(self):
        with pytest.raises(ValueError, match="newer than this library"):
            RunSpec.from_dict({"scale": 6, "spec_version": SPEC_VERSION + 1})

    def test_garbage_version_refused(self):
        with pytest.raises(ValueError, match="invalid spec_version"):
            RunSpec.from_dict({"scale": 6, "spec_version": "two"})

    def test_v2_document_migrates(self):
        # v2 predates async_lanes; the migration only restamps — the
        # new field's default reproduces the old behaviour.
        spec = RunSpec.from_dict(
            {"scale": 6, "execution": "async", "spec_version": 2}
        )
        assert spec.spec_version == SPEC_VERSION
        assert spec.async_lanes == "thread"

    def test_v1_chains_through_v2(self):
        spec = RunSpec.from_dict(
            {"scale": 6, "validate": True, "spec_version": 1}
        )
        assert spec.validation == "full"
        assert spec.async_lanes == "thread"

    def test_v3_document_migrates(self):
        # v3 predates the shard plane and mmap cache reads; the
        # migration only restamps — both defaults ("pipe", off)
        # reproduce the old hand-off behaviour exactly.
        spec = RunSpec.from_dict({
            "scale": 6, "execution": "async",
            "async_lanes": "process", "spec_version": 3,
        })
        assert spec.spec_version == SPEC_VERSION
        assert spec.async_lanes == "process"
        assert spec.shard_plane == "pipe"
        assert spec.cache_mmap is False

    def test_v4_document_migrates(self):
        # v4 predates the trace plane; the migration only restamps —
        # tracing defaults off, reproducing v4 behaviour exactly.
        spec = RunSpec.from_dict({
            "scale": 6, "execution": "async",
            "shard_plane": "shm", "spec_version": 4,
        })
        assert spec.spec_version == SPEC_VERSION
        assert spec.shard_plane == "shm"
        assert spec.trace is False

    def test_v1_chains_to_current(self):
        spec = RunSpec.from_dict(
            {"scale": 6, "validate": True, "spec_version": 1}
        )
        assert spec.spec_version == SPEC_VERSION
        assert spec.shard_plane == "pipe"
        assert spec.cache_mmap is False
        assert spec.trace is False

    def test_constructor_refuses_stale_version(self):
        with pytest.raises(ValueError, match="migrated"):
            RunSpec(scale=6, spec_version=1)


class TestRunSpecValidation:
    def test_pipeline_fields_validated_via_config(self):
        with pytest.raises(ValueError):
            RunSpec(scale=6, execution="turbo")
        with pytest.raises(ValueError):
            RunSpec(scale=6, parallel_executor="gpu")

    @pytest.mark.parametrize("field,value", [
        ("repeats", 0),
        ("cache_policy", "maybe"),
        ("validation", "sometimes"),
    ])
    def test_api_fields_validated(self, field, value):
        with pytest.raises(ValueError):
            RunSpec(scale=6, **{field: value})

    def test_mode_tables_are_exposed(self):
        assert "shared" in CACHE_POLICIES
        assert {"off", "contracts", "full"} <= set(VALIDATION_MODES)


class TestRunSpecHash:
    def test_stable_and_sensitive(self):
        a = RunSpec(scale=8, seed=1)
        assert a.spec_hash() == RunSpec(scale=8, seed=1).spec_hash()
        assert a.spec_hash() != RunSpec(scale=8, seed=2).spec_hash()

    def test_hash_ignores_field_order(self):
        doc = RunSpec(scale=8).to_dict()
        shuffled = dict(reversed(list(doc.items())))
        assert RunSpec.from_dict(shuffled).spec_hash() == RunSpec(scale=8).spec_hash()


class TestConfigBridge:
    def test_to_config_maps_validation_modes(self):
        assert RunSpec(scale=6, validation="off").to_config().validate is False
        assert RunSpec(scale=6, validation="full").to_config().validate is True
        assert RunSpec(
            scale=6, validation="validate-only"
        ).to_config().validate is True

    def test_async_lanes_reaches_config_and_back(self):
        spec = RunSpec(scale=6, execution="async", async_lanes="process")
        config = spec.to_config()
        assert config.async_lanes == "process"
        assert RunSpec.from_config(config).async_lanes == "process"

    def test_shard_plane_reaches_config_and_back(self):
        spec = RunSpec(scale=6, execution="async",
                       async_lanes="process", shard_plane="shm",
                       cache_mmap=True)
        config = spec.to_config()
        assert config.shard_plane == "shm"
        assert config.cache_mmap is True
        back = RunSpec.from_config(config)
        assert back.shard_plane == "shm"
        assert back.cache_mmap is True

    def test_invalid_shard_plane_rejected(self):
        with pytest.raises(ValueError, match="shard_plane"):
            RunSpec(scale=6, shard_plane="udp")

    def test_verify_property(self):
        assert RunSpec(scale=6, validation="contracts").verify
        assert RunSpec(scale=6, validation="full").verify
        assert not RunSpec(scale=6, validation="off").verify
        assert not RunSpec(scale=6, validation="validate-only").verify

    def test_cache_policy_gates_cache_dir(self, tmp_path):
        shared = RunSpec(scale=6, cache_policy="shared")
        off = RunSpec(scale=6, cache_policy="off")
        assert shared.to_config(tmp_path).cache_dir == tmp_path
        assert off.to_config(tmp_path).cache_dir is None
        assert shared.to_config(None).cache_dir is None

    def test_from_config_round_trip(self, tmp_path):
        config = PipelineConfig(
            scale=7, backend="numpy", validate=True,
            cache_dir=tmp_path, parallel_executor="mp",
        )
        spec = RunSpec.from_config(config)
        assert spec.validation == "full"
        assert spec.cache_policy == "shared"
        assert spec.to_config(tmp_path) == config

    def test_data_dir_serialises_as_string(self, tmp_path):
        spec = RunSpec(scale=6, data_dir=tmp_path)
        assert isinstance(spec.data_dir, str)
        assert spec.to_config().data_dir == tmp_path
        assert spec.to_config().keep_files


class TestSweepSpec:
    def test_grid_order_backend_major(self):
        sweep = SweepSpec(base=RunSpec(scale=1), scales=(6, 8),
                          backends=("scipy", "numpy"))
        cells = [(s.backend, s.scale) for s in sweep.run_specs()]
        assert cells == [("scipy", 6), ("scipy", 8),
                         ("numpy", 6), ("numpy", 8)]

    def test_round_trip(self):
        sweep = SweepSpec(base=RunSpec(scale=1, execution="streaming"),
                          scales=(6,), backends=("scipy",), repeats=2)
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep
        assert SweepSpec.from_dict(json.loads(sweep.to_json())) == sweep

    def test_unknown_field_rejected(self):
        doc = SweepSpec(base=RunSpec(scale=1), scales=(6,),
                        backends=("scipy",)).to_dict()
        doc["turbo"] = True
        with pytest.raises(ValueError, match="unknown SweepSpec field"):
            SweepSpec.from_dict(doc)

    def test_base_unknown_field_rejected(self):
        doc = SweepSpec(base=RunSpec(scale=1), scales=(6,),
                        backends=("scipy",)).to_dict()
        doc["base"]["bogus"] = 1
        with pytest.raises(ValueError, match="unknown RunSpec field"):
            SweepSpec.from_dict(doc)

    def test_needs_axes(self):
        with pytest.raises(ValueError, match="at least one scale"):
            SweepSpec(base=RunSpec(scale=1), scales=(), backends=("scipy",))
        with pytest.raises(ValueError, match="at least one backend"):
            SweepSpec(base=RunSpec(scale=1), scales=(6,), backends=())

    def test_base_repeats_must_be_one(self):
        with pytest.raises(ValueError, match="base.repeats"):
            SweepSpec(base=RunSpec(scale=1, repeats=2), scales=(6,),
                      backends=("scipy",))

    def test_missing_base_rejected(self):
        with pytest.raises(ValueError, match="needs a 'base'"):
            SweepSpec.from_dict({"scales": [6], "backends": ["scipy"]})
