"""Unit tests for EdgeDataset, manifests, shards, and binary format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edgeio.binary import read_binary_shard, write_binary_shard
from repro.edgeio.dataset import EdgeDataset, shard_slices
from repro.edgeio.errors import CorruptEdgeFileError, DatasetLayoutError
from repro.edgeio.manifest import DatasetManifest, ShardInfo


class TestShardSlices:
    def test_even_split(self):
        assert shard_slices(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_remainder_spread(self):
        slices = shard_slices(10, 3)
        sizes = [end - start for start, end in slices]
        assert sizes == [4, 3, 3]

    def test_more_shards_than_edges(self):
        slices = shard_slices(2, 4)
        sizes = [end - start for start, end in slices]
        assert sizes == [1, 1, 0, 0]

    def test_zero_edges(self):
        assert shard_slices(0, 2) == [(0, 0), (0, 0)]

    def test_contiguous_cover(self):
        slices = shard_slices(1234, 7)
        assert slices[0][0] == 0 and slices[-1][1] == 1234
        for (_, prev_end), (next_start, _) in zip(slices, slices[1:]):
            assert prev_end == next_start


class TestWriteOpenRead:
    def test_round_trip_single_shard(self, tmp_path, small_edges):
        u, v = small_edges
        ds = EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64)
        ru, rv = EdgeDataset.open(tmp_path / "d").read_all()
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_round_trip_many_shards(self, tmp_path, small_edges):
        u, v = small_edges
        ds = EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                               num_shards=7)
        assert ds.num_shards == 7
        ru, rv = EdgeDataset.open(tmp_path / "d").read_all()
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_round_trip_npy_format(self, tmp_path, small_edges):
        u, v = small_edges
        EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                          num_shards=2, fmt="npy")
        ds = EdgeDataset.open(tmp_path / "d")
        assert ds.fmt == "npy"
        ru, rv = ds.read_all()
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_vertex_base_round_trip(self, tmp_path, small_edges):
        u, v = small_edges
        EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                          vertex_base=1)
        payload = (tmp_path / "d" / "part-00000.tsv").read_bytes()
        first_line = payload.splitlines()[0].split(b"\t")
        assert int(first_line[0]) == u[0] + 1  # on-disk is 1-based
        ru, _ = EdgeDataset.open(tmp_path / "d").read_all()
        assert np.array_equal(ru, u)  # in-memory is 0-based again

    def test_empty_dataset(self, tmp_path):
        empty = np.empty(0, dtype=np.int64)
        ds = EdgeDataset.write(tmp_path / "d", empty, empty, num_vertices=4)
        assert ds.num_edges == 0
        ru, rv = ds.read_all()
        assert len(ru) == 0

    def test_iter_batches_spans_shards(self, tmp_path, small_edges):
        u, v = small_edges
        ds = EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                               num_shards=5)
        batches = list(ds.iter_batches(100))
        assert sum(len(b[0]) for b in batches) == len(u)
        assert all(len(b[0]) == 100 for b in batches[:-1])
        cat_u = np.concatenate([b[0] for b in batches])
        assert np.array_equal(cat_u, u)

    def test_invalid_format_rejected(self, tmp_path, small_edges):
        u, v = small_edges
        with pytest.raises(ValueError, match="fmt"):
            EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                              fmt="parquet")

    def test_checksum_verification(self, tmp_path, small_edges):
        u, v = small_edges
        ds = EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64)
        ds.read_shard(0, verify_checksum=True)  # passes

    def test_extra_metadata_persisted(self, tmp_path, small_edges):
        u, v = small_edges
        EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64,
                          extra={"kernel": "k0"})
        ds = EdgeDataset.open(tmp_path / "d")
        assert ds.manifest.extra["kernel"] == "k0"


class TestFailureModes:
    def test_open_without_manifest(self, tmp_path):
        (tmp_path / "d").mkdir()
        with pytest.raises(DatasetLayoutError, match="manifest"):
            EdgeDataset.open(tmp_path / "d")

    def test_open_with_missing_shard(self, tmp_path, small_edges):
        u, v = small_edges
        EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64, num_shards=2)
        (tmp_path / "d" / "part-00001.tsv").unlink()
        with pytest.raises(DatasetLayoutError, match="missing"):
            EdgeDataset.open(tmp_path / "d")

    def test_open_with_truncated_shard(self, tmp_path, small_edges):
        u, v = small_edges
        EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64)
        shard = tmp_path / "d" / "part-00000.tsv"
        shard.write_bytes(shard.read_bytes()[: shard.stat().st_size // 2])
        with pytest.raises(DatasetLayoutError, match="bytes"):
            EdgeDataset.open(tmp_path / "d")

    def test_corrupt_checksum_detected(self, tmp_path, small_edges):
        u, v = small_edges
        EdgeDataset.write(tmp_path / "d", u, v, num_vertices=64)
        shard = tmp_path / "d" / "part-00000.tsv"
        payload = bytearray(shard.read_bytes())
        payload[0:1] = b"9" if payload[0:1] != b"9" else b"8"
        shard.write_bytes(bytes(payload))
        ds = EdgeDataset.open(tmp_path / "d")  # sizes still match
        with pytest.raises(CorruptEdgeFileError, match="CRC"):
            ds.read_shard(0, verify_checksum=True)

    def test_out_of_bounds_labels_detected(self, tmp_path):
        u = np.array([0, 1], dtype=np.int64)
        v = np.array([1, 0], dtype=np.int64)
        EdgeDataset.write(tmp_path / "d", u, v, num_vertices=2)
        shard = tmp_path / "d" / "part-00000.tsv"
        original = shard.read_bytes()
        shard.write_bytes(b"0\t9\n1\t0\n")
        if len(b"0\t9\n1\t0\n") != len(original):
            pytest.skip("byte-size guard fires before label check")
        ds = EdgeDataset.open(tmp_path / "d")
        with pytest.raises(CorruptEdgeFileError, match="outside"):
            ds.read_shard(0)

    def test_manifest_schema_violation(self, tmp_path):
        (tmp_path / "d").mkdir()
        (tmp_path / "d" / "manifest.json").write_text("{\"format_version\": 99}")
        with pytest.raises(DatasetLayoutError, match="format_version"):
            EdgeDataset.open(tmp_path / "d")

    def test_manifest_not_json(self, tmp_path):
        (tmp_path / "d").mkdir()
        (tmp_path / "d" / "manifest.json").write_text("not json")
        with pytest.raises(DatasetLayoutError, match="JSON"):
            EdgeDataset.open(tmp_path / "d")


class TestStreamWriter:
    def test_rolls_shards(self, tmp_path, small_edges):
        u, v = small_edges
        with EdgeDataset.stream_writer(tmp_path / "d", num_vertices=64,
                                       edges_per_shard=50) as writer:
            for start in range(0, len(u), 30):
                writer.append(u[start:start + 30], v[start:start + 30])
        ds = writer.result
        assert ds.num_edges == len(u)
        assert ds.num_shards == -(-len(u) // 50)
        ru, rv = ds.read_all()
        assert np.array_equal(ru, u) and np.array_equal(rv, v)

    def test_no_manifest_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with EdgeDataset.stream_writer(tmp_path / "d", num_vertices=4,
                                           edges_per_shard=10) as writer:
                writer.append(np.array([1]), np.array([2]))
                raise RuntimeError("producer crashed")
        with pytest.raises(DatasetLayoutError):
            EdgeDataset.open(tmp_path / "d")

    def test_empty_stream_creates_valid_dataset(self, tmp_path):
        with EdgeDataset.stream_writer(tmp_path / "d", num_vertices=4) as writer:
            pass
        assert writer.result.num_edges == 0
        EdgeDataset.open(tmp_path / "d")

    def test_append_after_close_rejected(self, tmp_path):
        with EdgeDataset.stream_writer(tmp_path / "d", num_vertices=4) as writer:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            writer.append(np.array([1]), np.array([1]))

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            with EdgeDataset.stream_writer(tmp_path / "d", num_vertices=4) as writer:
                writer.append(np.array([1]), np.array([1, 2]))


class TestBinaryShards:
    def test_round_trip(self, tmp_path):
        u = np.array([1, 2, 3], dtype=np.int64)
        v = np.array([4, 5, 6], dtype=np.int64)
        nbytes = write_binary_shard(tmp_path / "s.npy", u, v)
        assert nbytes > 0
        ru, rv = read_binary_shard(tmp_path / "s.npy")
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_rejects_garbage(self, tmp_path):
        (tmp_path / "bad.npy").write_bytes(b"not an npy file")
        with pytest.raises(CorruptEdgeFileError):
            read_binary_shard(tmp_path / "bad.npy")

    def test_rejects_wrong_shape(self, tmp_path):
        np.save(tmp_path / "bad.npy", np.zeros((3, 3), dtype=np.int64))
        with pytest.raises(CorruptEdgeFileError, match="shape"):
            read_binary_shard(tmp_path / "bad.npy")

    def test_rejects_float_dtype(self, tmp_path):
        np.save(tmp_path / "bad.npy", np.zeros((3, 2), dtype=np.float64))
        with pytest.raises(CorruptEdgeFileError, match="dtype"):
            read_binary_shard(tmp_path / "bad.npy")


class TestManifest:
    def test_json_round_trip(self):
        manifest = DatasetManifest(
            num_vertices=10, num_edges=5, vertex_base=1,
            shards=[ShardInfo("part-00000.tsv", 5, 123, 40)],
            extra={"k": "v"},
        )
        restored = DatasetManifest.from_json(manifest.to_json())
        assert restored.num_vertices == 10
        assert restored.shards[0].crc32 == 123
        assert restored.extra == {"k": "v"}
