"""Unit tests for golden records and the report generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.harness.goldens import GoldenRecord, golden_for_config
from repro.harness.report import build_report
from repro.harness.sweep import SweepPlan, run_sweep


@pytest.fixture(scope="module")
def golden():
    return golden_for_config(PipelineConfig(scale=6, seed=9, backend="scipy"))


class TestGoldenRecord:
    def test_reproducible_for_config(self, golden):
        again = golden_for_config(PipelineConfig(scale=6, seed=9,
                                                 backend="scipy"))
        assert golden.matches(again)

    def test_backend_independent(self, golden):
        for backend in ("numpy", "graphblas", "dataframe"):
            other = golden_for_config(
                PipelineConfig(scale=6, seed=9, backend=backend)
            )
            assert golden.matches(other), (backend, golden.differences(other))

    def test_detects_different_seed(self, golden):
        other = golden_for_config(PipelineConfig(scale=6, seed=10,
                                                 backend="scipy"))
        assert not golden.matches(other)
        assert any("crc" in d or "digest" in d for d in golden.differences(other))

    def test_json_round_trip(self, golden, tmp_path):
        path = tmp_path / "golden.json"
        golden.save(path)
        restored = GoldenRecord.load(path)
        assert golden.matches(restored)
        assert restored.k1_num_edges == golden.k1_num_edges

    def test_histograms_nonempty(self, golden):
        assert golden.k2_out_degree_histogram
        assert golden.k2_in_degree_histogram
        total_rows = sum(golden.k2_out_degree_histogram.values())
        assert total_rows > 0

    def test_top_vertices_sorted_by_rank(self, golden):
        assert len(golden.k3_top_vertices) == 10
        assert len(set(golden.k3_top_vertices)) == 10

    def test_differences_names_fields(self, golden):
        import dataclasses

        tweaked = dataclasses.replace(golden, k2_nnz=golden.k2_nnz + 1)
        diffs = golden.differences(tweaked)
        assert diffs and "k2_nnz" in diffs[0]

    def test_float_tolerance_in_matches(self, golden):
        import dataclasses

        tweaked = dataclasses.replace(
            golden, k3_rank_sum=golden.k3_rank_sum + 1e-12
        )
        assert golden.matches(tweaked)


class TestReport:
    @pytest.fixture(scope="class")
    def records(self):
        plan = SweepPlan(scales=[6], backends=["python", "scipy"], seed=4)
        return run_sweep(plan)

    def test_contains_all_sections(self, records):
        document = build_report(records)
        for heading in ("Table I", "Table II", "Figure 4", "Figure 5",
                        "Figure 6", "Figure 7", "Officially timed totals"):
            assert heading in document

    def test_shape_checks_rendered(self, records):
        document = build_report(records)
        assert "Paper-shape checks" in document
        assert "[PASS]" in document or "[FAIL]" in document

    def test_totals_table_rows(self, records):
        document = build_report(records)
        assert "| python | 6 |" in document
        assert "| scipy | 6 |" in document

    def test_without_tables(self, records):
        document = build_report(records, include_tables=False)
        assert "Table II" not in document
        assert "Figure 7" in document

    def test_claims_fail_detection(self):
        # Synthetic records where python is *fastest* must FAIL the
        # "interpreted at the bottom" claim.
        from repro.harness.records import MeasurementRecord

        fake = [
            MeasurementRecord("python", 6, 1024, "k3-pagerank", 0.001,
                              1e9, True),
            MeasurementRecord("scipy", 6, 1024, "k3-pagerank", 1.0,
                              1e3, True),
        ]
        document = build_report(fake, include_tables=False)
        assert "[FAIL] interpreted implementation" in document
