"""Unit tests for the process-lane pool behind the async executor.

The pool's promises: lane workers produce byte-identical artifacts to
in-process execution, op failures come back with their original type
name, a crashed worker is replaced without poisoning the pool, and
shutdown leaves no processes behind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lanes import (
    DEFAULT_LANE_WORKERS,
    LANE_OPS,
    LaneTask,
    LaneWorkerCrashError,
    ProcessLanePool,
    RemoteLaneError,
    run_lane_op,
)
from repro.core.shmplane import ShardBuffer, shm_available
from repro.edgeio.dataset import read_shard_file, write_shard

needs_shm = pytest.mark.skipif(
    not shm_available(),
    reason="host cannot create shared-memory segments",
)


def _edges(n=200, seed=3):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 1 << 12, n, dtype=np.int64),
        rng.integers(0, 1 << 12, n, dtype=np.int64),
    )


def _encode_payload(directory, index, u, v, fmt="tsv"):
    return dict(
        directory=str(directory), index=index, u=u, v=v,
        fmt=fmt, vertex_base=0,
    )


@pytest.fixture(scope="module")
def pool():
    lane_pool = ProcessLanePool(2)
    yield lane_pool
    lane_pool.shutdown()


class TestLaneOps:
    def test_registry_has_the_codec_ops(self):
        assert set(LANE_OPS) >= {"encode-shard", "decode-shard"}

    def test_run_lane_op_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown lane op"):
            run_lane_op("nope", {})

    def test_encode_op_matches_write_shard(self, tmp_path):
        u, v = _edges()
        (tmp_path / "ref").mkdir()
        reference = write_shard(tmp_path / "ref", 0, u, v,
                                fmt="tsv", vertex_base=0)
        info = run_lane_op(
            "encode-shard", _encode_payload(tmp_path / "lane", 0, u, v)
        )
        assert info == reference
        assert (
            (tmp_path / "lane" / info.name).read_bytes()
            == (tmp_path / "ref" / reference.name).read_bytes()
        )

    def test_decode_op_matches_read_shard_file(self, tmp_path):
        u, v = _edges()
        run_lane_op("encode-shard", _encode_payload(tmp_path, 0, u, v))
        path = tmp_path / "part-00000.tsv"
        lane_u, lane_v = run_lane_op(
            "decode-shard", dict(path=str(path), fmt="tsv", vertex_base=0)
        )
        ref_u, ref_v = read_shard_file(path, fmt="tsv", vertex_base=0)
        assert np.array_equal(lane_u, ref_u)
        assert np.array_equal(lane_v, ref_v)


@needs_shm
class TestShmLaneOps:
    """The zero-copy op variants: same bytes, segments via names."""

    def test_registry_has_the_shm_ops(self):
        assert {"encode-shard-shm", "decode-shard-shm"} <= set(LANE_OPS)

    def test_encode_shm_matches_plain_encode(self, tmp_path):
        u, v = _edges()
        buffer = ShardBuffer.create(u, v)
        try:
            info = run_lane_op("encode-shard-shm", dict(
                directory=str(tmp_path / "shm"), index=0,
                shm=buffer.name, start=0, end=len(u),
                fmt="tsv", vertex_base=0,
            ))
            reference = run_lane_op(
                "encode-shard", _encode_payload(tmp_path / "ref", 0, u, v)
            )
            assert info == reference
            assert (
                (tmp_path / "shm" / info.name).read_bytes()
                == (tmp_path / "ref" / reference.name).read_bytes()
            )
        finally:
            buffer.release()

    def test_encode_shm_slices_the_segment(self, tmp_path):
        # The shard plane ships ONE segment for all shards; each encode
        # op carves its own [start, end) window out of it.
        u, v = _edges(n=100)
        buffer = ShardBuffer.create(u, v)
        try:
            info = run_lane_op("encode-shard-shm", dict(
                directory=str(tmp_path / "shm"), index=1,
                shm=buffer.name, start=25, end=75,
                fmt="tsv", vertex_base=0,
            ))
            reference = run_lane_op("encode-shard", _encode_payload(
                tmp_path / "ref", 1, u[25:75], v[25:75]
            ))
            assert info == reference
            assert (
                (tmp_path / "shm" / info.name).read_bytes()
                == (tmp_path / "ref" / reference.name).read_bytes()
            )
        finally:
            buffer.release()

    def test_decode_shm_round_trip(self, tmp_path):
        u, v = _edges(seed=13)
        run_lane_op("encode-shard", _encode_payload(tmp_path, 0, u, v))
        name = run_lane_op("decode-shard-shm", dict(
            path=str(tmp_path / "part-00000.tsv"),
            fmt="tsv", vertex_base=0,
        ))
        assert isinstance(name, str)  # only the name crosses the pipe
        adopted = ShardBuffer.attach(name, owner=True)
        try:
            du, dv = adopted.arrays()
            assert np.array_equal(du, u) and np.array_equal(dv, v)
        finally:
            adopted.release()

    def test_shm_ops_work_through_the_pool(self, pool, tmp_path):
        # Cross-process for real: the parent creates the segment, a
        # lane worker encodes from it by name.
        u, v = _edges(seed=17)
        buffer = ShardBuffer.create(u, v)
        try:
            info = pool.run("encode-shard-shm", dict(
                directory=str(tmp_path), index=0,
                shm=buffer.name, start=0, end=len(u),
                fmt="tsv", vertex_base=0,
            ))
            assert info.num_edges == len(u)
            name = pool.run("decode-shard-shm", dict(
                path=str(tmp_path / info.name), fmt="tsv", vertex_base=0,
            ))
            adopted = ShardBuffer.attach(name, owner=True)
            try:
                du, dv = adopted.arrays()
                assert np.array_equal(du, u) and np.array_equal(dv, v)
            finally:
                adopted.release()
        finally:
            buffer.release()


class TestPayloadViaNegotiation:
    def test_default_is_pipe(self):
        lane_pool = ProcessLanePool(1)
        try:
            assert lane_pool.payload_via == "pipe"
        finally:
            lane_pool.shutdown()

    @needs_shm
    def test_shm_negotiated_when_available(self):
        lane_pool = ProcessLanePool(1, payload_via="shm")
        try:
            assert lane_pool.payload_via == "shm"
        finally:
            lane_pool.shutdown()

    def test_unknown_plane_rejected(self):
        with pytest.raises(ValueError, match="payload_via must be one of"):
            ProcessLanePool(1, payload_via="telepathy")

    def test_unavailable_shm_degrades_to_pipe(self, monkeypatch):
        from repro.core import shmplane as shmplane_module

        monkeypatch.setattr(shmplane_module, "shm_available", lambda: False)
        monkeypatch.setattr(shmplane_module, "_fallback_warned", True)
        lane_pool = ProcessLanePool(1, payload_via="shm")
        try:
            assert lane_pool.payload_via == "pipe"
        finally:
            lane_pool.shutdown()


class TestProcessLanePool:
    def test_round_trip_bit_identical(self, pool, tmp_path):
        u, v = _edges()
        info = pool.run(
            "encode-shard", _encode_payload(tmp_path, 0, u, v)
        )
        (tmp_path / "ref").mkdir()
        reference = write_shard(tmp_path / "ref", 0, u, v,
                                fmt="tsv", vertex_base=0)
        assert info == reference
        assert (
            (tmp_path / info.name).read_bytes()
            == (tmp_path / "ref" / reference.name).read_bytes()
        )
        lane_u, lane_v = pool.run(
            "decode-shard",
            dict(path=str(tmp_path / info.name), fmt="tsv", vertex_base=0),
        )
        assert np.array_equal(lane_u, u) and np.array_equal(lane_v, v)

    def test_run_task_dispatches_descriptor(self, pool, tmp_path):
        u, v = _edges(seed=5)
        info = pool.run_task(
            LaneTask("encode-shard", _encode_payload(tmp_path, 1, u, v))
        )
        assert info.num_edges == len(u)

    def test_remote_error_carries_type_name(self, pool, tmp_path):
        with pytest.raises(RemoteLaneError) as excinfo:
            pool.run(
                "decode-shard",
                dict(path=str(tmp_path / "missing.tsv"),
                     fmt="tsv", vertex_base=0),
            )
        assert excinfo.value.error_type == "FileNotFoundError"
        # The worker survives a job-level failure and serves on.
        assert pool.run(
            "encode-shard", _encode_payload(tmp_path, 2, *_edges(seed=7))
        ).num_edges == 200

    def test_crashed_worker_is_replaced(self, pool, tmp_path):
        u, v = _edges(seed=9)
        pool.run("encode-shard", _encode_payload(tmp_path, 3, u, v))
        for handle in list(pool._handles):
            handle.process.terminate()
            handle.process.join()
        # Every slot respawns lazily; both must serve again.
        for index in (4, 5):
            info = pool.run(
                "encode-shard", _encode_payload(tmp_path, index, u, v)
            )
            assert info.num_edges == len(u)

    def test_lazy_respawn_warms_replacement(self, monkeypatch, tmp_path):
        # A replacement spawned after a worker crash must be pinged
        # (imports warmed) before its first op, exactly like a
        # prestarted worker — otherwise the respawn's interpreter +
        # numpy start-up would be billed to that op's busy time.
        from repro.core import lanes as lanes_module

        lane_pool = ProcessLanePool(1)
        try:
            lane_pool.run(
                "encode-shard", _encode_payload(tmp_path, 0, *_edges())
            )
            for handle in list(lane_pool._handles):
                handle.process.terminate()
                handle.process.join()
            pings = []
            original = lanes_module._LaneWorkerHandle.ping

            def counting_ping(self):
                pings.append(True)
                return original(self)

            monkeypatch.setattr(
                lanes_module._LaneWorkerHandle, "ping", counting_ping
            )
            info = lane_pool.run(
                "encode-shard", _encode_payload(tmp_path, 1, *_edges())
            )
            assert info.num_edges == 200
            assert pings, "replacement worker was not warmed before its op"
        finally:
            lane_pool.shutdown()

    def test_prestart_spawns_and_warms_all_workers(self, tmp_path):
        lane_pool = ProcessLanePool(2)
        try:
            lane_pool.prestart()
            assert len(lane_pool._handles) == 2
            assert all(
                h.process.is_alive() for h in lane_pool._handles
            )
            u, v = _edges(seed=11)
            info = lane_pool.run(
                "encode-shard", _encode_payload(tmp_path, 0, u, v)
            )
            assert info.num_edges == len(u)
            assert len(lane_pool._handles) == 2  # reused, not respawned
        finally:
            lane_pool.shutdown()

    def test_prestart_failure_preserves_slot_tokens(self, monkeypatch,
                                                    tmp_path):
        # A worker that dies during warm-up must not leak its idle-queue
        # token: the failure is re-raised, every slot survives as a
        # lazy-respawn token, and a later dispatch recovers.
        from repro.core import lanes as lanes_module

        lane_pool = ProcessLanePool(2)
        try:
            monkeypatch.setattr(
                lanes_module._LaneWorkerHandle, "ping",
                lambda self: (_ for _ in ()).throw(
                    LaneWorkerCrashError("warm-up died")
                ),
            )
            with pytest.raises(LaneWorkerCrashError, match="warm-up died"):
                lane_pool.prestart()
            assert lane_pool._idle.qsize() == 2  # no token leaked
            assert lane_pool._handles == []      # broken workers culled
            monkeypatch.undo()
            info = lane_pool.run(
                "encode-shard", _encode_payload(tmp_path, 0, *_edges())
            )
            assert info.num_edges == 200
        finally:
            lane_pool.shutdown()

    def test_background_prestart_then_immediate_shutdown(self):
        # shutdown() must join the warm-up thread before stopping
        # handles (two threads must never drive one pipe), then leave
        # no live workers behind.
        import time as time_module

        lane_pool = ProcessLanePool(2)
        lane_pool.prestart(block=False)
        started = time_module.monotonic()
        lane_pool.shutdown()
        assert time_module.monotonic() - started < 15.0
        thread = lane_pool._prestart_thread
        assert thread is not None and not thread.is_alive()
        assert lane_pool._handles == []

    def test_run_timed_reports_queue_wait(self, pool, tmp_path):
        result, queue_wait = pool.run_timed(
            "encode-shard", _encode_payload(tmp_path, 9, *_edges())
        )
        assert result.num_edges == 200
        assert queue_wait >= 0.0

    def test_terminated_pool_refuses_work(self, tmp_path):
        lane_pool = ProcessLanePool(1)
        lane_pool.terminate()
        with pytest.raises(LaneWorkerCrashError, match="terminated"):
            lane_pool.run(
                "encode-shard",
                _encode_payload(tmp_path, 0, *_edges()),
            )

    def test_shutdown_stops_workers(self):
        lane_pool = ProcessLanePool(1)
        lane_pool.prestart()
        handles = list(lane_pool._handles)
        lane_pool.shutdown()
        for handle in handles:
            handle.process.join(timeout=5)
            assert not handle.process.is_alive()

    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ProcessLanePool(0)

    def test_default_worker_count_sane(self):
        assert DEFAULT_LANE_WORKERS >= 1


class TestTracedLaneDispatch:
    """Worker-side spans ship back and re-anchor onto the parent clock."""

    def test_untraced_dispatch_ships_no_spans(self, pool, tmp_path):
        from repro.core import trace

        assert trace.current() is None
        info = pool.run(
            "encode-shard", _encode_payload(tmp_path, 20, *_edges())
        )
        assert info.num_edges == 200  # plain 2-tuple reply path

    def test_worker_spans_merge_under_the_dispatch_span(
        self, pool, tmp_path
    ):
        from repro.core import trace

        collector = trace.TraceCollector()
        with trace.activate(collector):
            _, queue_wait = pool.run_timed(
                "encode-shard", _encode_payload(tmp_path, 21, *_edges())
            )
        spans = {s.name: s for s in collector.spans()}
        assert "lane-dispatch:encode-shard" in spans
        assert "lane-op:encode-shard" in spans
        dispatch = spans["lane-dispatch:encode-shard"]
        op = spans["lane-op:encode-shard"]
        assert dispatch.args["queue_wait"] == queue_wait
        assert op.parent_id == dispatch.span_id
        assert op.proc.startswith("repro-lane-") or op.proc != dispatch.proc
        # Re-anchoring: the worker's op interval must land inside the
        # parent's dispatch interval (5ms slack for handshake skew).
        assert op.start >= dispatch.start - 0.005
        assert (
            op.start + op.dur
            <= dispatch.start + dispatch.dur + 0.005
        )
        assert op.dur <= dispatch.dur + 0.005

    def test_merged_span_ids_stay_unique(self, pool, tmp_path):
        from repro.core import trace

        collector = trace.TraceCollector()
        with trace.activate(collector):
            for index in (22, 23):
                pool.run_timed(
                    "encode-shard",
                    _encode_payload(tmp_path, index, *_edges()),
                )
        ids = [s.span_id for s in collector.spans()]
        assert len(ids) == len(set(ids))
