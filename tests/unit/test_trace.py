"""Unit tests for the span tracer (``repro.core.trace``)."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core import trace
from repro.core.trace import (
    NULL_SPAN,
    Span,
    TraceCollector,
    chrome_trace,
    clock_offset,
    task_busy_seconds,
)


def _load_check_trace():
    """Import ``tools/check_trace.py`` by path (tools/ is not a package)."""
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "tools" / "check_trace.py"
    spec = importlib.util.spec_from_file_location("check_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDisabledPath:
    def test_module_span_without_collector_is_null(self):
        assert trace.current() is None
        handle = trace.span("anything", cat="stage", foo=1)
        assert handle is NULL_SPAN
        assert handle.span_id is None

    def test_null_span_is_inert(self):
        with trace.span("nothing") as sp:
            sp.set(key="value")  # must not raise or allocate state
        # Exceptions propagate through the null handle unchanged.
        with pytest.raises(RuntimeError):
            with trace.span("nothing"):
                raise RuntimeError("boom")

    def test_activation_restores_previous_binding(self):
        outer = TraceCollector()
        inner = TraceCollector()
        with trace.activate(outer):
            assert trace.current() is outer
            with trace.activate(inner):
                assert trace.current() is inner
            assert trace.current() is outer
        assert trace.current() is None


class TestSpanRecording:
    def test_nesting_builds_ambient_parent_links(self):
        collector = TraceCollector()
        with trace.activate(collector):
            with trace.span("outer", cat="stage") as outer:
                with trace.span("inner", cat="task") as inner:
                    assert inner.parent_id == outer.span_id
        spans = {s.name: s for s in collector.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id

    def test_durations_monotone_and_non_negative(self):
        # The satellite clock audit's contract: every span closes with
        # dur >= 0 and a start at or after its parent's start.
        collector = TraceCollector()
        with trace.activate(collector):
            with trace.span("outer"):
                time.sleep(0.002)
                with trace.span("inner"):
                    time.sleep(0.002)
        spans = {s.name: s for s in collector.spans()}
        for span_row in spans.values():
            assert span_row.dur >= 0.0
            assert span_row.start >= 0.0
        assert spans["inner"].start >= spans["outer"].start
        assert spans["inner"].dur <= spans["outer"].dur
        assert (
            spans["inner"].start + spans["inner"].dur
            <= spans["outer"].start + spans["outer"].dur + 1e-9
        )

    def test_explicit_duration_override_is_bitwise(self):
        collector = TraceCollector()
        handle = collector.begin("task:x", cat="task", start=1.0)
        completed = collector.end(handle, dur=0.123456789)
        assert completed.dur == 0.123456789

    def test_negative_duration_clamps_to_zero(self):
        collector = TraceCollector()
        handle = collector.begin("x", start=5.0)
        assert collector.end(handle, end=4.0).dur == 0.0

    def test_error_exit_tags_the_span(self):
        collector = TraceCollector()
        with trace.activate(collector):
            with pytest.raises(ValueError):
                with trace.span("failing"):
                    raise ValueError("nope")
        (span_row,) = collector.spans()
        assert span_row.args["error"] == "ValueError"

    def test_set_attaches_attributes(self):
        collector = TraceCollector()
        with trace.activate(collector):
            with trace.span("s", cat="shm") as sp:
                sp.set(nbytes=42)
        (span_row,) = collector.spans()
        assert span_row.args == {"nbytes": 42}

    def test_span_ids_unique_across_threads(self):
        collector = TraceCollector()
        ids = []
        lock = threading.Lock()

        def record():
            with trace.activate(collector):
                for _ in range(50):
                    with trace.span("t") as sp:
                        with lock:
                            ids.append(sp.span_id)

        threads = [threading.Thread(target=record) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == len(set(ids)) == 200

    def test_thread_local_ambient_stacks_do_not_cross(self):
        collector = TraceCollector()
        seen = {}

        def worker():
            with trace.activate(collector):
                with trace.span("worker-root") as sp:
                    seen["parent"] = sp.parent_id

        with trace.activate(collector):
            with trace.span("main-root"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        # The other thread's root must NOT have picked up main's open
        # span as a parent — stacks are per-thread.
        assert seen["parent"] is None


class TestRoundTrip:
    def test_span_doc_round_trip(self):
        original = Span(
            name="lane-op:encode", cat="lane", start=1.5, dur=0.25,
            span_id=7, parent_id=3, proc="lane-0", thread="MainThread",
            args={"k": "v"},
        )
        assert Span.from_dict(original.to_dict()) == original

    def test_trace_doc_shape(self):
        collector = TraceCollector()
        with trace.activate(collector):
            with trace.span("x"):
                pass
        doc = collector.trace_doc()
        assert set(doc) == {"epoch0", "spans"}
        assert json.loads(json.dumps(doc)) == doc  # JSON-safe


class TestClockHandshake:
    def test_clock_offset_midpoint(self):
        assert clock_offset(10.0, 10.2, 4.0) == pytest.approx(6.1)

    def test_merge_reanchors_and_remaps(self):
        # A "worker" collector on its raw clock: spans start at raw
        # perf_counter-like values (here synthetic).
        worker = TraceCollector(label="lane-0", raw_clock=True)
        op = worker.begin("lane-op:encode", cat="lane", start=100.0)
        child = worker.begin("cache:k1", cat="cache", start=100.1)
        worker.end(child, dur=0.05)
        worker.end(op, dur=0.5)

        parent = TraceCollector()
        with trace.activate(parent):
            dispatch = parent.begin("lane-dispatch:encode", cat="lane")
            # Handshake said: worker clock - 90 == parent run clock
            # (the caller passes clock_offset - t0 already folded in).
            new_ids = parent.merge(
                worker.span_docs(), offset=-90.0,
                proc="lane-0", parent_id=dispatch.span_id,
            )
            parent.end(dispatch)
        assert len(new_ids) == 2
        spans = {s.name: s for s in parent.spans()}
        merged_op = spans["lane-op:encode"]
        merged_child = spans["cache:k1"]
        # Re-anchored starts.
        assert merged_op.start == pytest.approx(10.0)
        assert merged_child.start == pytest.approx(10.1)
        # Foreign root adopted under the dispatch span; the child's
        # link remapped to the op's *new* local id.
        assert merged_op.parent_id == spans["lane-dispatch:encode"].span_id
        assert merged_child.parent_id == merged_op.span_id
        assert merged_op.proc == "lane-0"
        # Fresh local ids — unique within the parent trace.
        all_ids = [s.span_id for s in parent.spans()]
        assert len(all_ids) == len(set(all_ids)) == 3


class TestDerivedMetrics:
    def test_task_busy_seconds_excludes_queue_wait(self):
        docs = [
            Span("task:a", "task", 0.0, 2.0, 1, None, "main", "t",
                 {"group": "k1", "queue_wait": 0.5}).to_dict(),
            Span("task:b", "task", 0.0, 1.0, 2, None, "main", "t",
                 {"group": "k1"}).to_dict(),
            Span("task:c", "task", 0.0, 4.0, 3, None, "main", "t",
                 {"group": "k2", "queue_wait": 1.0}).to_dict(),
            Span("stage:k1", "stage", 0.0, 9.0, 4, None, "main", "t",
                 {"group": "k1"}).to_dict(),  # not cat=task: ignored
        ]
        busy = task_busy_seconds(docs)
        assert busy == {"k1": pytest.approx(2.5), "k2": pytest.approx(3.0)}


class TestChromeExport:
    def _collect(self):
        collector = TraceCollector()
        with trace.activate(collector):
            with trace.span("pipeline", cat="run"):
                with trace.span("stage:k1-sort", cat="stage"):
                    pass
        return collector.trace_doc()

    def test_export_structure(self):
        doc = chrome_trace(self._collect())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        # Metadata first, then complete events.
        assert phases == sorted(phases, key=lambda p: p != "M")
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"pipeline", "stage:k1-sort"}
        assert min(e["ts"] for e in complete) == 0.0
        for event in complete:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_export_structure_deterministic_across_runs(self):
        # Two identical runs: timestamps differ, structure must not.
        def shape(doc):
            return [
                (e["ph"], e["name"], e.get("cat"), e["pid"], e.get("tid"))
                for e in chrome_trace(doc)["traceEvents"]
            ]

        assert shape(self._collect()) == shape(self._collect())

    def test_multi_doc_alignment_on_epoch(self):
        early = {"epoch0": 1000.0, "spans": [
            Span("job:queue", "job", 0.0, 1.0, 1, None,
                 "service", "sched").to_dict(),
        ]}
        late = {"epoch0": 1000.5, "spans": [
            Span("pipeline", "run", 0.0, 0.4, 1, None,
                 "main", "MainThread").to_dict(),
        ]}
        events = {
            e["name"]: e
            for e in chrome_trace(early, late)["traceEvents"]
            if e["ph"] == "X"
        }
        assert events["job:queue"]["ts"] == 0.0
        assert events["pipeline"]["ts"] == pytest.approx(0.5e6)
        # Distinct procs get distinct pids; "main" sorts first.
        assert events["pipeline"]["pid"] < events["job:queue"]["pid"]

    def test_empty_docs_export_empty(self):
        assert chrome_trace() == {"traceEvents": [], "displayTimeUnit": "ms"}
        assert chrome_trace({"epoch0": 1.0, "spans": []})["traceEvents"] == []

    def test_export_passes_the_repo_validator(self):
        validate = _load_check_trace().validate
        summary = validate(
            json.loads(json.dumps(chrome_trace(self._collect()))),
            require=["pipeline", "stage:k1-sort"],
        )
        assert summary["events"] >= 4  # 2 metadata + 2 complete
        assert summary["processes"] == 1


@pytest.mark.skipif(
    "REPRO_PERF_TESTS" not in os.environ,
    reason="timing-sensitive; set REPRO_PERF_TESTS=1 (CI async leg does)",
)
class TestDisabledOverhead:
    def test_disabled_span_is_cheap(self):
        # The no-op path is a thread-local read + None check; budget a
        # generous 2µs/call so shared CI runners never flake.
        assert trace.current() is None
        calls = 100_000
        t0 = time.perf_counter()
        for _ in range(calls):
            with trace.span("noop", cat="stage"):
                pass
        per_call = (time.perf_counter() - t0) / calls
        assert per_call < 2e-6, f"disabled span costs {per_call * 1e9:.0f}ns"
