"""Unit tests for the TSV edge format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edgeio.errors import CorruptEdgeFileError
from repro.edgeio.format import decode_edges, encode_edges, parse_edge_line


class TestEncode:
    def test_basic_layout(self):
        payload = encode_edges(np.array([0, 2]), np.array([1, 0]))
        assert payload == b"0\t1\n2\t0\n"

    def test_empty(self):
        assert encode_edges(np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64)) == b""

    def test_vertex_base_one(self):
        payload = encode_edges(np.array([0]), np.array([1]), vertex_base=1)
        assert payload == b"1\t2\n"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            encode_edges(np.array([1]), np.array([1, 2]))

    def test_large_labels(self):
        big = np.array([2**40], dtype=np.int64)
        payload = encode_edges(big, big)
        assert payload == f"{2**40}\t{2**40}\n".encode()


class TestDecode:
    def test_round_trip(self):
        u = np.array([5, 0, 63, 17], dtype=np.int64)
        v = np.array([2, 61, 0, 17], dtype=np.int64)
        ru, rv = decode_edges(encode_edges(u, v))
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_round_trip_with_base(self):
        u = np.array([0, 3], dtype=np.int64)
        v = np.array([1, 2], dtype=np.int64)
        payload = encode_edges(u, v, vertex_base=1)
        ru, rv = decode_edges(payload, vertex_base=1)
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_empty_and_whitespace_only(self):
        for payload in (b"", b"\n\n", b"  \n"):
            u, v = decode_edges(payload)
            assert len(u) == 0 and len(v) == 0

    def test_odd_token_count_raises(self):
        with pytest.raises(CorruptEdgeFileError, match="odd number"):
            decode_edges(b"1\t2\n3\n")

    def test_non_integer_raises(self):
        with pytest.raises(CorruptEdgeFileError, match="non-integer"):
            decode_edges(b"1\tabc\n")

    def test_strict_reports_line_number(self):
        with pytest.raises(CorruptEdgeFileError, match="line 2"):
            decode_edges(b"1\t2\nbroken\n", strict=True)

    def test_strict_skips_blank_lines(self):
        u, v = decode_edges(b"1\t2\n\n3\t4\n", strict=True)
        assert np.array_equal(u, [1, 3])

    def test_strict_and_fast_agree(self):
        payload = b"10\t20\n30\t40\n50\t60\n"
        fast = decode_edges(payload)
        strict = decode_edges(payload, strict=True)
        assert np.array_equal(fast[0], strict[0])
        assert np.array_equal(fast[1], strict[1])


class TestParseEdgeLine:
    def test_valid(self):
        assert parse_edge_line(b"12\t34") == (12, 34)

    def test_wrong_field_count(self):
        with pytest.raises(CorruptEdgeFileError, match="expected 2 fields"):
            parse_edge_line(b"1\t2\t3", lineno=7)

    def test_non_integer(self):
        with pytest.raises(CorruptEdgeFileError, match="non-integer"):
            parse_edge_line(b"x\ty")
