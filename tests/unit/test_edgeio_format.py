"""Unit tests for the TSV edge format."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edgeio.errors import CorruptEdgeFileError
from repro.edgeio.format import (
    _decode_edges_fast,
    _decode_edges_split,
    _encode_edges_strings,
    decode_edges,
    encode_edges,
    parse_edge_line,
)


class TestEncode:
    def test_basic_layout(self):
        payload = encode_edges(np.array([0, 2]), np.array([1, 0]))
        assert payload == b"0\t1\n2\t0\n"

    def test_empty(self):
        assert encode_edges(np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64)) == b""

    def test_vertex_base_one(self):
        payload = encode_edges(np.array([0]), np.array([1]), vertex_base=1)
        assert payload == b"1\t2\n"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            encode_edges(np.array([1]), np.array([1, 2]))

    def test_large_labels(self):
        big = np.array([2**40], dtype=np.int64)
        payload = encode_edges(big, big)
        assert payload == f"{2**40}\t{2**40}\n".encode()


class TestDecode:
    def test_round_trip(self):
        u = np.array([5, 0, 63, 17], dtype=np.int64)
        v = np.array([2, 61, 0, 17], dtype=np.int64)
        ru, rv = decode_edges(encode_edges(u, v))
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_round_trip_with_base(self):
        u = np.array([0, 3], dtype=np.int64)
        v = np.array([1, 2], dtype=np.int64)
        payload = encode_edges(u, v, vertex_base=1)
        ru, rv = decode_edges(payload, vertex_base=1)
        assert np.array_equal(u, ru) and np.array_equal(v, rv)

    def test_empty_and_whitespace_only(self):
        for payload in (b"", b"\n\n", b"  \n"):
            u, v = decode_edges(payload)
            assert len(u) == 0 and len(v) == 0

    def test_odd_token_count_raises(self):
        with pytest.raises(CorruptEdgeFileError, match="odd number"):
            decode_edges(b"1\t2\n3\n")

    def test_non_integer_raises(self):
        with pytest.raises(CorruptEdgeFileError, match="non-integer"):
            decode_edges(b"1\tabc\n")

    def test_strict_reports_line_number(self):
        with pytest.raises(CorruptEdgeFileError, match="line 2"):
            decode_edges(b"1\t2\nbroken\n", strict=True)

    def test_strict_skips_blank_lines(self):
        u, v = decode_edges(b"1\t2\n\n3\t4\n", strict=True)
        assert np.array_equal(u, [1, 3])

    def test_strict_and_fast_agree(self):
        payload = b"10\t20\n30\t40\n50\t60\n"
        fast = decode_edges(payload)
        strict = decode_edges(payload, strict=True)
        assert np.array_equal(fast[0], strict[0])
        assert np.array_equal(fast[1], strict[1])


class TestVectorizedEncodeParity:
    """The fast path must be byte-identical to the string-kernel path."""

    @pytest.mark.parametrize("hi", [1, 2, 10, 11, 101, 2**16, 2**40, 2**62])
    def test_random_arrays_byte_identical(self, hi):
        rng = np.random.default_rng(hi)
        u = rng.integers(0, hi, 257, dtype=np.int64)
        v = rng.integers(0, hi, 257, dtype=np.int64)
        assert encode_edges(u, v) == _encode_edges_strings(u, v)

    @pytest.mark.parametrize("value", [0, 9, 10, 99, 100, 999, 1000,
                                       10**9 - 1, 10**9, 2**62])
    def test_digit_count_boundaries(self, value):
        arr = np.array([value], dtype=np.int64)
        assert encode_edges(arr, arr) == f"{value}\t{value}\n".encode()

    def test_mixed_widths_one_payload(self):
        u = np.array([0, 10, 999, 2**40], dtype=np.int64)
        v = np.array([7, 100, 9, 1], dtype=np.int64)
        assert encode_edges(u, v) == b"0\t7\n10\t100\n999\t9\n1099511627776\t1\n"

    def test_negative_labels_fall_back_to_string_path(self):
        u = np.array([-3, 5], dtype=np.int64)
        v = np.array([2, -1], dtype=np.int64)
        assert encode_edges(u, v) == b"-3\t2\n5\t-1\n"

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**62),
                st.integers(min_value=0, max_value=2**62),
            ),
            min_size=1, max_size=64,
        ),
        st.integers(min_value=0, max_value=1),
    )
    def test_property_round_trip_and_parity(self, edges, base):
        u = np.array([e[0] for e in edges], dtype=np.int64)
        v = np.array([e[1] for e in edges], dtype=np.int64)
        payload = encode_edges(u, v, vertex_base=base)
        assert payload == _encode_edges_strings(u + base, v + base)
        ru, rv = decode_edges(payload, vertex_base=base)
        assert np.array_equal(ru, u) and np.array_equal(rv, v)


class TestBufferLevelDecode:
    """The frombuffer tokenizer must agree with ``payload.split()``."""

    @pytest.mark.parametrize("payload", [
        b"1 2\n3 4",            # space-separated
        b"1\t2\r\n3\t4\r\n",    # CRLF
        b"  5\t6\n",            # leading whitespace
        b"7\x0b8",              # vertical tab (split() treats it as ws)
        b"9\x0c10\n",           # form feed
        b"1\t2\n\n\n3\t4\n",    # blank lines
    ])
    def test_whitespace_variants_match_split(self, payload):
        fast = _decode_edges_fast(payload)
        legacy = _decode_edges_split(payload)
        assert fast is not None
        assert np.array_equal(fast[0], legacy[0])
        assert np.array_equal(fast[1], legacy[1])

    def test_signed_labels_defer_to_split_path(self):
        assert _decode_edges_fast(b"-5\t3\n") is None
        u, v = decode_edges(b"-5\t3\n")
        assert u[0] == -5 and v[0] == 3

    def test_plus_prefix_defers_to_split_path(self):
        assert _decode_edges_fast(b"+5\t3\n") is None
        u, v = decode_edges(b"+5\t3\n")
        assert u[0] == 5 and v[0] == 3

    def test_long_tokens_defer_to_split_path(self):
        # 19 digits can overflow the vectorized accumulate; int64 still
        # holds 2**62, so the split path must produce the value.
        big = 2**62
        payload = f"{big}\t{big}\n".encode()
        assert _decode_edges_fast(payload) is None
        u, v = decode_edges(payload)
        assert u[0] == big and v[0] == big

    def test_overflowing_token_is_corruption(self):
        with pytest.raises(CorruptEdgeFileError, match="non-integer"):
            decode_edges(b"99999999999999999999\t1\n")

    def test_odd_token_count_message_matches_legacy(self):
        with pytest.raises(CorruptEdgeFileError,
                           match=r"odd number of tokens \(3\)"):
            decode_edges(b"1\t2\n3\n")

    def test_no_python_token_list_on_fast_path(self, monkeypatch):
        # The satellite fix: warm decode must not materialise an
        # O(edges) Python list.  Trip the legacy tokenizer to prove the
        # fast path never reaches it for clean payloads.
        import repro.edgeio.format as fmt

        def boom(payload):
            raise AssertionError("legacy split path used on clean payload")

        monkeypatch.setattr(fmt, "_decode_edges_split", boom)
        u, v = decode_edges(b"12\t34\n56\t78\n")
        assert u.tolist() == [12, 56] and v.tolist() == [34, 78]


class TestParseEdgeLine:
    def test_valid(self):
        assert parse_edge_line(b"12\t34") == (12, 34)

    def test_wrong_field_count(self):
        with pytest.raises(CorruptEdgeFileError, match="expected 2 fields"):
            parse_edge_line(b"1\t2\t3", lineno=7)

    def test_non_integer(self):
        with pytest.raises(CorruptEdgeFileError, match="non-integer"):
            parse_edge_line(b"x\ty")
