"""Run every docstring example in the library as a test.

Docstring examples are API documentation; if they drift from the code
they are worse than no examples.  This test walks all ``repro``
submodules and executes their doctests.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
