"""Job-store replay and compaction: crash recovery without zombies.

The durable JSONL store is no longer just an audit log — the service
replays it on startup.  These tests pin the three replay guarantees:

* terminal jobs restore **verbatim** from their terminal event
  documents (no re-execution);
* jobs in flight at a crash re-queue **exactly once** (marked by one
  ``requeued`` event), and a torn final line — the one crash artifact
  the append discipline permits — is tolerated;
* a compacted store replays to **identical** service state.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunSpec, SweepSpec
from repro.service import BenchmarkService, JobStore, load_events

SPEC = RunSpec(scale=6, backend="numpy")


def _service(store, **kwargs):
    kwargs.setdefault("workers", 2)
    return BenchmarkService(store_path=store, **kwargs)


def _drop_events(store, predicate):
    """Rewrite the store without the events matching ``predicate``."""
    kept = [e for e in load_events(store) if not predicate(e)]
    store.write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in kept),
        encoding="utf-8",
    )


class TestReplayTerminal:
    def test_terminal_jobs_restore_verbatim(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        with _service(store) as service:
            job_id = service.submit(SPEC)
            service.result(job_id, timeout=120)
            original = service.result_doc(job_id)
        events_before = load_events(store)
        with _service(store) as replayed:
            doc = replayed.result_doc(job_id)
            assert doc["state"] == "succeeded"
            assert doc["records"] == original["records"]
            assert doc["rank_sha256"] == original["rank_sha256"]
            # result() works on a replayed job (documents, no outcome).
            assert replayed.result(job_id)["rank_sha256"] == \
                original["rank_sha256"]
        # Restoring a terminal job appends nothing and re-runs nothing.
        assert load_events(store) == events_before

    def test_replayed_ids_do_not_collide(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        with _service(store) as service:
            first = service.submit(SPEC)
            service.result(first, timeout=120)
        with _service(store) as replayed:
            second = replayed.submit(SPEC.with_overrides(seed=2))
            assert second != first
            replayed.result(second, timeout=120)
            assert {j["job_id"] for j in replayed.jobs()} == {first, second}

    def test_failed_and_cancelled_jobs_stay_terminal(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        bad = RunSpec(scale=6, backend="graphblas", execution="parallel")
        with _service(store, workers=1) as service:
            blocker = service.submit(RunSpec(scale=10, backend="scipy"))
            bad_id = service.submit(bad)
            victim = service.submit(SPEC.with_overrides(seed=42))
            assert service.cancel(victim)
            service.result(blocker, timeout=120)
            with pytest.raises(Exception):
                service.result(bad_id, timeout=120)
        with _service(store) as replayed:
            assert replayed.status(bad_id)["state"] == "failed"
            assert "ExecutorCapabilityError" in \
                replayed.status(bad_id)["error"]
            assert replayed.status(victim)["state"] == "cancelled"
            events = [e["event"] for e in load_events(store)]
            assert "requeued" not in events


class TestReplayRequeue:
    def test_running_job_requeues_exactly_once(self, tmp_path):
        """A job RUNNING at the crash comes back, runs, and succeeds —
        driven by exactly one ``requeued`` hand-off event."""
        store = tmp_path / "jobs.jsonl"
        with _service(store) as service:
            job_id = service.submit(SPEC)
            service.result(job_id, timeout=120)
            original = service.result_doc(job_id)
        # Simulate the crash: erase the terminal event, leaving the job
        # mid-flight (submitted + running) in the log.
        _drop_events(store, lambda e: e["event"] == "succeeded")
        with _service(store) as replayed:
            replayed.result(job_id, timeout=120)
            doc = replayed.result_doc(job_id)
            assert doc["rank_sha256"] == original["rank_sha256"]
        events = [e["event"] for e in load_events(store)]
        assert events.count("requeued") == 1
        assert events.count("succeeded") == 1

    def test_pending_job_requeues(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        with _service(store) as service:
            job_id = service.submit(SPEC)
            service.result(job_id, timeout=120)
        _drop_events(
            store, lambda e: e["event"] in ("running", "succeeded")
        )
        with _service(store) as replayed:
            replayed.result(job_id, timeout=120)
            assert replayed.result_doc(job_id)["rank_sha256"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        with _service(store) as service:
            job_id = service.submit(SPEC)
            service.result(job_id, timeout=120)
        _drop_events(store, lambda e: e["event"] == "succeeded")
        with open(store, "a", encoding="utf-8") as fh:
            fh.write('{"event": "succeeded", "job_id": "job-00001", "rec')
        with _service(store) as replayed:
            replayed.result(job_id, timeout=120)
            assert replayed.result_doc(job_id)["rank_sha256"]

    def test_requeued_duplicates_dedupe(self, tmp_path):
        """Two interrupted submissions of one spec replay into one
        in-flight primary (the dedup map is rebuilt from the log)."""
        store = tmp_path / "jobs.jsonl"
        with _service(store, workers=1) as service:
            job_id = service.submit(SPEC)
            service.result(job_id, timeout=120)
        _drop_events(store, lambda e: e["event"] in ("running", "succeeded"))
        with _service(store, workers=1) as replayed:
            replayed.result(job_id, timeout=120)
            dup = replayed.submit(SPEC)
            # Either deduplicated onto the requeued job or (if it
            # already finished) resubmitted fresh; never a third state.
            assert dup in {j["job_id"] for j in replayed.jobs()}


class TestReplayDegraded:
    def test_dropped_job_ids_are_never_reissued(self, tmp_path):
        """An unusable logged job (unparseable spec, no terminal event)
        is dropped from the replayed state, but its id must still be
        burned — ids key the store and sweep cell rosters."""
        store = tmp_path / "jobs.jsonl"
        with _service(store) as service:
            service.result(service.submit(SPEC), timeout=120)
        with open(store, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "event": "submitted", "time": 0.0, "job_id": "job-00007",
                "spec_hash": "x", "spec": {"scale": 6, "bogus_field": 1},
            }, sort_keys=True) + "\n")
        with _service(store) as replayed:
            assert "job-00007" not in {
                j["job_id"] for j in replayed.jobs()
            }
            new_id = replayed.submit(SPEC.with_overrides(seed=2))
            assert new_id == "job-00008"
            replayed.result(new_id, timeout=120)

    def test_worker_crash_retry_is_capped(self, tmp_path):
        """A job that keeps killing its workers must converge to
        FAILED after two logged requeues, not poison every restart."""
        store = tmp_path / "jobs.jsonl"
        spec = SPEC.with_overrides(seed=66)
        events = [
            {"event": "submitted", "time": 1.0, "job_id": "job-00001",
             "spec_hash": spec.spec_hash(), "spec": spec.to_dict()},
            {"event": "requeued", "time": 2.0, "job_id": "job-00001",
             "spec_hash": spec.spec_hash()},
            {"event": "requeued", "time": 3.0, "job_id": "job-00001",
             "spec_hash": spec.spec_hash()},
            {"event": "failed", "time": 4.0, "job_id": "job-00001",
             "error": "WorkerCrashError: worker repro-worker-0 "
                      "(pid 1) died mid-job: EOFError"},
        ]
        store.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in events),
            encoding="utf-8",
        )
        # Compaction must not reset the cap: the requeued trail of a
        # worker-crash failure survives the rewrite.
        JobStore(store).compact()
        requeues = [e["event"] for e in load_events(store)]
        assert requeues.count("requeued") == 2
        with _service(store) as replayed:
            assert replayed.status("job-00001")["state"] == "failed"
        assert [e["event"] for e in load_events(store)].count("requeued") \
            == 2  # no third attempt

    def test_terminal_sweep_with_unparseable_sweep_doc_restores(
        self, tmp_path
    ):
        """A finished sweep's result survives even when its SweepSpec
        document no longer parses — the terminal event carries it."""
        store = tmp_path / "jobs.jsonl"
        sweep = SweepSpec(base=SPEC, scales=(6,), backends=("numpy",))
        with _service(store) as service:
            parent_id = service.submit_sweep(sweep)
            service.result(parent_id, timeout=240)
            original = service.result_doc(parent_id)
        rewritten = []
        for event in load_events(store):
            if event["event"] == "sweep-submitted":
                event = dict(event)
                event["sweep"] = {"bogus": True}
            rewritten.append(event)
        store.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n"
                    for e in rewritten),
            encoding="utf-8",
        )
        with _service(store) as replayed:
            doc = replayed.result_doc(parent_id)
            assert doc["state"] == "succeeded"
            assert doc["records"] == original["records"]
            assert doc["sweep"] is None  # the unparseable part, flagged


class TestCompaction:
    def test_compacted_store_replays_to_identical_state(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        sweep = SweepSpec(base=SPEC, scales=(6, 7), backends=("numpy",))
        with _service(store) as service:
            run_id = service.submit(SPEC.with_overrides(seed=5))
            parent_id = service.submit_sweep(sweep)
            service.submit(SPEC.with_overrides(seed=5))  # deduplicated
            service.result(run_id, timeout=120)
            service.result(parent_id, timeout=240)
        with _service(store) as before:
            jobs_before = before.jobs()
            docs_before = {
                j["job_id"]: before.result_doc(j["job_id"])
                for j in jobs_before
            }
        dropped = JobStore(store).compact()
        assert dropped > 0
        with _service(store) as after:
            jobs_after = after.jobs()
            assert [j["job_id"] for j in jobs_after] == \
                [j["job_id"] for j in jobs_before]
            for job in jobs_after:
                assert after.result_doc(job["job_id"]) == \
                    docs_before[job["job_id"]]

    def test_compaction_keeps_inflight_trails(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        with _service(store) as service:
            done_id = service.submit(SPEC)
            service.result(done_id, timeout=120)
            crashed_id = service.submit(SPEC.with_overrides(seed=9))
            service.result(crashed_id, timeout=120)
        _drop_events(
            store,
            lambda e: e["event"] == "succeeded"
            and e.get("job_id") == crashed_id,
        )
        JobStore(store).compact()
        events = load_events(store)
        crashed = [e["event"] for e in events
                   if e.get("job_id") == crashed_id]
        assert crashed == ["submitted", "running"]
        done = [e["event"] for e in events if e.get("job_id") == done_id]
        assert done == ["submitted", "succeeded"]
        with _service(store) as replayed:
            replayed.result(crashed_id, timeout=120)
            assert replayed.result_doc(crashed_id)["rank_sha256"]

    def test_compact_every_autocompacts(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        job_store = JobStore(store, compact_every=4)
        job_store.append("submitted", {"job_id": "job-00001", "spec_hash": "x",
                                       "spec": SPEC.to_dict()})
        job_store.append("running", {"job_id": "job-00001"})
        job_store.append("deduplicated", {"job_id": "job-00001",
                                          "spec_hash": "x"})
        job_store.append("succeeded", {"job_id": "job-00001"})
        events = [e["event"] for e in load_events(store)]
        assert events == ["submitted", "succeeded"]

    def test_compact_on_start(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        with _service(store) as service:
            service.result(service.submit(SPEC), timeout=120)
        size = len(load_events(store))
        with _service(store, compact_on_start=True) as service:
            assert len(load_events(store)) < size
            assert service.jobs()[0]["state"] == "succeeded"

    def test_compact_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError, match="compact_every"):
            JobStore(tmp_path / "x.jsonl", compact_every=0)

    def test_compact_disabled_store_is_noop(self):
        assert JobStore(None).compact() == 0


class TestReplayTrace:
    def test_traced_job_replays_with_its_trace(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        traced = SPEC.with_overrides(trace=True)
        with _service(store) as service:
            job_id = service.submit(traced)
            service.result(job_id, timeout=120)
            original = service.job_trace(job_id)
            assert original is not None
        with _service(store) as replayed:
            restored = replayed.job_trace(job_id)
            assert restored == original
            doc = replayed.result_doc(job_id)
            assert doc["observability"]["cache_misses"] >= 0
