"""Unit tests for the parallel substrate (sim communicator, partition,
kernels, traffic accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.comm import payload_nbytes
from repro.parallel.kernels import exchange_edges_by_owner, parallel_kernel2
from repro.parallel.partition import RowPartition
from repro.parallel.sim import run_rank_programs
from repro.parallel.traffic import TrafficLog


class TestPartition:
    def test_bounds_cover_all_rows(self):
        p = RowPartition(num_vertices=100, size=7)
        covered = []
        for rank in range(7):
            lo, hi = p.bounds(rank)
            covered.extend(range(lo, hi))
        assert covered == list(range(100))

    def test_balanced_within_one(self):
        p = RowPartition(num_vertices=10, size=3)
        sizes = [p.local_count(r) for r in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_owner_of_matches_bounds(self):
        p = RowPartition(num_vertices=64, size=5)
        vertices = np.arange(64)
        owners = p.owner_of(vertices)
        for rank in range(5):
            lo, hi = p.bounds(rank)
            assert np.all(owners[lo:hi] == rank)

    def test_owner_rejects_out_of_range(self):
        p = RowPartition(num_vertices=8, size=2)
        with pytest.raises(ValueError):
            p.owner_of(np.array([8]))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            RowPartition(num_vertices=4, size=2).bounds(2)

    def test_more_ranks_than_rows(self):
        p = RowPartition(num_vertices=2, size=4)
        sizes = [p.local_count(r) for r in range(4)]
        assert sum(sizes) == 2


class TestSimCommunicator:
    def test_allreduce_sum(self):
        def program(comm):
            return comm.allreduce(np.array([float(comm.rank + 1)]))

        results = run_rank_programs(program, 4)
        assert all(r[0] == 10.0 for r in results)

    def test_allreduce_max_and_min(self):
        def program(comm):
            hi = comm.allreduce(float(comm.rank), op="max")
            lo = comm.allreduce(float(comm.rank), op="min")
            return hi, lo

        for hi, lo in run_rank_programs(program, 3):
            assert (hi, lo) == (2.0, 0.0)

    def test_allreduce_unknown_op(self):
        def program(comm):
            return comm.allreduce(1.0, op="xor")

        with pytest.raises(RuntimeError, match="failed"):
            run_rank_programs(program, 2)

    def test_bcast_from_nonzero_root(self):
        def program(comm):
            payload = {"data": comm.rank} if comm.rank == 1 else None
            return comm.bcast(payload, root=1)

        assert all(r == {"data": 1} for r in run_rank_programs(program, 3))

    def test_allgather_ordered(self):
        def program(comm):
            return comm.allgather(comm.rank * 10)

        for result in run_rank_programs(program, 3):
            assert result == [0, 10, 20]

    def test_alltoall_personalised(self):
        def program(comm):
            payloads = [f"{comm.rank}->{dest}" for dest in range(comm.size)]
            return comm.alltoall(payloads)

        results = run_rank_programs(program, 3)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_length(self):
        def program(comm):
            return comm.alltoall([1])

        with pytest.raises(RuntimeError):
            run_rank_programs(program, 2)

    def test_send_recv(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(1, np.array([42]))
                return None
            return comm.recv(0)[0]

        results = run_rank_programs(program, 2)
        assert results[1] == 42

    def test_rank_exception_propagates(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(RuntimeError):
            run_rank_programs(program, 2)

    def test_single_rank_group(self):
        def program(comm):
            assert comm.allreduce(5.0) == 5.0
            assert comm.allgather("x") == ["x"]
            comm.barrier()
            return comm.size

        assert run_rank_programs(program, 1) == [1]

    def test_allreduce_returns_copy(self):
        def program(comm):
            out = comm.allreduce(np.ones(3))
            out[0] = 99.0  # must not corrupt other ranks' view
            comm.barrier()
            again = comm.allreduce(np.ones(3))
            return again[0]

        assert all(v == float(3) for v in run_rank_programs(program, 3))


class TestTrafficAccounting:
    def test_allreduce_bytes_naive_model(self):
        traffic = TrafficLog()

        def program(comm):
            comm.allreduce(np.zeros(100))  # 800 bytes

        run_rank_programs(program, 4, traffic=traffic)
        # Naive: 2 * (p-1) * payload = 2 * 3 * 800.
        assert traffic.bytes_by_op()["allreduce"] == 4800

    def test_bcast_bytes(self):
        traffic = TrafficLog()

        def program(comm):
            comm.bcast(np.zeros(10) if comm.rank == 0 else None)

        run_rank_programs(program, 3, traffic=traffic)
        assert traffic.bytes_by_op()["bcast"] == 2 * 80

    def test_collectives_logged_once(self):
        traffic = TrafficLog()

        def program(comm):
            comm.allreduce(1.0)

        run_rank_programs(program, 4, traffic=traffic)
        assert len(traffic.records) == 1

    def test_summary_shape(self):
        log = TrafficLog()
        log.record("send", 100, 1, rank=2)
        summary = log.summary()
        assert summary["total_bytes"] == 100
        assert summary["total_messages"] == 1
        assert summary["bytes_by_op"] == {"send": 100}

    def test_payload_nbytes(self):
        assert payload_nbytes(np.zeros(4)) == 32
        assert payload_nbytes(3) == 8
        assert payload_nbytes(True) == 1
        assert payload_nbytes(b"ab") == 2
        assert payload_nbytes("abc") == 3
        assert payload_nbytes([np.zeros(2), 1]) == 24
        assert payload_nbytes(object()) == 64


class TestExchangeAndKernels:
    def test_exchange_routes_to_owner(self):
        n = 16

        def program(comm, u, v):
            partition = RowPartition(num_vertices=n, size=comm.size)
            per = len(u) // comm.size
            start = comm.rank * per
            end = len(u) if comm.rank == comm.size - 1 else start + per
            lu, lv = exchange_edges_by_owner(
                comm, partition, u[start:end], v[start:end]
            )
            lo, hi = partition.bounds(comm.rank)
            assert np.all((lu >= lo) & (lu < hi))
            return len(lu)

        rng = np.random.default_rng(0)
        u = rng.integers(0, n, size=200).astype(np.int64)
        v = rng.integers(0, n, size=200).astype(np.int64)
        counts = run_rank_programs(program, 4, u, v)
        assert sum(counts) == 200

    def test_parallel_kernel2_reports_global_total(self):
        n = 8
        u = np.array([0, 0, 5, 7], dtype=np.int64)
        v = np.array([1, 1, 2, 2], dtype=np.int64)

        def program(comm):
            partition = RowPartition(num_vertices=n, size=comm.size)
            mask = partition.owner_of(u) == comm.rank
            matrix, details = parallel_kernel2(comm, partition, u[mask], v[mask])
            return details["pre_filter_entry_total"]

        totals = run_rank_programs(program, 2)
        assert all(t == 4.0 for t in totals)
