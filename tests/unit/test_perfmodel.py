"""Unit tests for the analytic performance models."""

from __future__ import annotations

import pytest

from repro.perfmodel.hardware import HardwareModel, LAPTOP_CLASS, SERVER_CLASS
from repro.perfmodel.kernels import (
    predict_kernel0,
    predict_kernel1,
    predict_kernel2,
    predict_kernel3,
    predict_parallel_kernel3,
    predict_pipeline,
)


class TestHardwareModel:
    def test_defaults_positive(self):
        hw = HardwareModel(name="x")
        assert hw.mem_bw_bytes_per_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareModel(name="x", mem_bw_bytes_per_s=0)
        with pytest.raises(ValueError):
            HardwareModel(name="x", net_alpha_s=-1)

    def test_with_rates(self):
        hw = LAPTOP_CLASS.with_rates(mem_bw_bytes_per_s=1e9)
        assert hw.mem_bw_bytes_per_s == 1e9
        assert LAPTOP_CLASS.mem_bw_bytes_per_s != 1e9

    def test_server_faster_than_laptop(self):
        assert SERVER_CLASS.mem_bw_bytes_per_s > LAPTOP_CLASS.mem_bw_bytes_per_s


class TestKernelPredictions:
    M = 1 << 20

    def test_all_kernels_positive(self):
        for prediction in predict_pipeline(LAPTOP_CLASS, self.M):
            assert prediction.seconds > 0
            assert prediction.edges_per_second > 0
            assert prediction.terms

    def test_k3_metric_uses_iterations(self):
        p10 = predict_kernel3(LAPTOP_CLASS, self.M, iterations=10)
        p20 = predict_kernel3(LAPTOP_CLASS, self.M, iterations=20)
        # Time doubles but the edges metric doubles too -> same edges/s.
        assert p20.seconds == pytest.approx(2 * p10.seconds)
        assert p20.edges_per_second == pytest.approx(p10.edges_per_second)

    def test_k3_fastest_kernel(self):
        # The paper's Figure 7 sits 1-2 decades above Figures 4-6.
        k0, k1, k2, k3 = predict_pipeline(LAPTOP_CLASS, self.M)
        assert k3.edges_per_second > k0.edges_per_second
        assert k3.edges_per_second > k1.edges_per_second
        assert k3.edges_per_second > k2.edges_per_second

    def test_faster_hardware_faster_everywhere(self):
        for slow, fast in zip(
            predict_pipeline(LAPTOP_CLASS, self.M),
            predict_pipeline(SERVER_CLASS, self.M),
        ):
            assert fast.edges_per_second >= slow.edges_per_second

    def test_throughput_roughly_scale_invariant(self):
        small = predict_kernel3(LAPTOP_CLASS, 1 << 16)
        large = predict_kernel3(LAPTOP_CLASS, 1 << 24)
        ratio = small.edges_per_second / large.edges_per_second
        assert 0.5 < ratio < 2.0

    def test_scalar_bound_when_interpreter_slow(self):
        slow = LAPTOP_CLASS.with_rates(scalar_ops_per_s=1e5)
        prediction = predict_kernel0(slow, self.M)
        assert max(prediction.terms, key=prediction.terms.get) == "format_scalar"

    def test_io_bound_when_storage_slow(self):
        slow_disk = LAPTOP_CLASS.with_rates(
            storage_write_bytes_per_s=1e6, scalar_ops_per_s=1e12
        )
        prediction = predict_kernel0(slow_disk, self.M)
        assert max(prediction.terms, key=prediction.terms.get) == "storage_write"

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_kernel0(LAPTOP_CLASS, 0)
        with pytest.raises(ValueError):
            predict_kernel3(LAPTOP_CLASS, 10, iterations=0)


class TestParallelModel:
    def test_network_term_grows_with_ranks(self):
        one = predict_parallel_kernel3(LAPTOP_CLASS, 1 << 24, 1 << 20, 2)
        many = predict_parallel_kernel3(LAPTOP_CLASS, 1 << 24, 1 << 20, 16)
        assert many.terms["allreduce_network"] > one.terms["allreduce_network"]

    def test_local_compute_shrinks_with_ranks(self):
        one = predict_parallel_kernel3(LAPTOP_CLASS, 1 << 24, 1 << 20, 1)
        many = predict_parallel_kernel3(LAPTOP_CLASS, 1 << 24, 1 << 20, 16)
        assert many.terms["spmv_memory"] < one.terms["spmv_memory"]

    def test_eventually_network_dominated(self):
        # The paper's Section IV.D prediction: at high rank counts the
        # allreduce dwarfs the local SpMV.
        prediction = predict_parallel_kernel3(
            LAPTOP_CLASS, 1 << 24, 1 << 20, 64
        )
        assert (
            prediction.terms["allreduce_network"]
            > prediction.terms["spmv_memory"]
        )


class TestCalibration:
    def test_calibrated_model_reproduces_k3(self):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import run_pipeline
        from repro.perfmodel.calibrate import calibrate_from_run

        result = run_pipeline(PipelineConfig(scale=8, seed=1, backend="scipy"))
        hw = calibrate_from_run(result, LAPTOP_CLASS)
        from repro.core.config import KernelName

        measured = result.kernel(KernelName.K3_PAGERANK).seconds
        predicted = predict_kernel3(
            hw, result.config.num_edges, iterations=20
        ).seconds
        assert predicted == pytest.approx(measured, rel=0.05)
