"""Size-budgeted LRU eviction and the Kernel 2 CSR artifact cache."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.artifacts import (
    ArtifactCache,
    cache_key,
    k1_cache_fields,
    k2_cache_fields,
)
from repro.core.config import KernelName, PipelineConfig
from repro.core.pipeline import run_pipeline


def _seed_entry(cache: ArtifactCache, kind: str, key: str, payload: bytes,
                mtime: float) -> None:
    """Create a fake published entry with a controlled mtime."""
    entry = cache.entry_dir(kind, key)
    entry.mkdir(parents=True)
    (entry / "blob.bin").write_bytes(payload)
    os.utime(entry, (mtime, mtime))


class TestEntriesAndEviction:
    def test_entries_sorted_lru_first(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        _seed_entry(cache, "k1", "newer", b"x" * 10, mtime=2_000.0)
        _seed_entry(cache, "k0", "older", b"x" * 10, mtime=1_000.0)
        keys = [entry.key for entry in cache.entries()]
        assert keys == ["older", "newer"]
        assert cache.total_bytes() == 20

    def test_staging_dirs_invisible(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        _seed_entry(cache, "k0", "real", b"x", mtime=1_000.0)
        staging = cache.entry_dir("k0", "real.tmp-1234")
        staging.mkdir(parents=True)
        assert [entry.key for entry in cache.entries()] == ["real"]

    def test_prune_evicts_oldest_until_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        _seed_entry(cache, "k0", "a", b"x" * 100, mtime=1.0)
        _seed_entry(cache, "k0", "b", b"x" * 100, mtime=2.0)
        _seed_entry(cache, "k1", "c", b"x" * 100, mtime=3.0)
        evicted = cache.prune(max_bytes=150)
        assert [entry.key for entry in evicted] == ["a", "b"]
        assert [entry.key for entry in cache.entries()] == ["c"]
        assert cache.total_bytes() == 100

    def test_prune_zero_empties_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        _seed_entry(cache, "k0", "a", b"x", mtime=1.0)
        _seed_entry(cache, "k2", "b", b"x", mtime=2.0)
        cache.prune(max_bytes=0)
        assert cache.entries() == []

    def test_prune_noop_under_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        _seed_entry(cache, "k0", "a", b"x" * 10, mtime=1.0)
        assert cache.prune(max_bytes=1_000) == []
        assert len(cache.entries()) == 1

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match=">= 0"):
            ArtifactCache(tmp_path / "c").prune(max_bytes=-1)

    def test_remove_by_key_and_kind(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        _seed_entry(cache, "k0", "dup", b"x", mtime=1.0)
        _seed_entry(cache, "k1", "dup", b"x", mtime=1.0)
        removed = cache.remove("dup", kind="k1")
        assert [entry.kind for entry in removed] == ["k1"]
        assert [entry.kind for entry in cache.entries()] == ["k0"]
        assert cache.remove("missing") == []

    def test_hit_touches_entry_so_lru_spares_it(self, tmp_path, tiny_dataset):
        cache = ArtifactCache(tmp_path / "c")

        def producer(entry):
            u, v = tiny_dataset.read_all()
            from repro.edgeio.dataset import EdgeDataset

            return EdgeDataset.write(entry, u, v, num_vertices=64), {}

        old_fields = {"kernel": "k0", "tag": "old"}
        new_fields = {"kernel": "k0", "tag": "new"}
        cache.dataset("k0", old_fields, producer)
        cache.dataset("k0", new_fields, producer)
        # Backdate both, then *hit* the old one — the hit must refresh
        # its recency so eviction takes the other entry first.
        for fields, stamp in ((old_fields, 1_000.0), (new_fields, 2_000.0)):
            entry = cache.entry_dir("k0", cache_key(fields))
            os.utime(entry, (stamp, stamp))
        _, details = cache.dataset("k0", old_fields, producer)
        assert details["artifact_cache"] == "hit"
        size = max(entry.num_bytes for entry in cache.entries())
        evicted = cache.prune(max_bytes=size)
        assert [entry.key for entry in evicted] == [cache_key(new_fields)]


class TestCsrArtifacts:
    def _matrix(self) -> sp.csr_matrix:
        dense = np.array([[0.0, 0.5, 0.5], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        return sp.csr_matrix(dense)

    def test_store_then_load_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        fields = {"kernel": "k2", "scale": 6}
        key = cache.store_csr("k2", fields, self._matrix(),
                              {"pre_filter_entry_total": 4.0})
        loaded = cache.load_csr("k2", fields)
        assert loaded is not None
        matrix, meta = loaded
        assert meta["pre_filter_entry_total"] == 4.0
        np.testing.assert_array_equal(matrix.toarray(), self._matrix().toarray())
        entry = cache.entry_dir("k2", key)
        assert json.loads((entry / "cache-entry.json").read_text())["scale"] == 6
        # No staging leftovers.
        leftovers = [p for p in entry.parent.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_load_missing_is_none(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        assert cache.load_csr("k2", {"kernel": "k2"}) is None

    def test_torn_entry_purged(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        fields = {"kernel": "k2"}
        key = cache.store_csr("k2", fields, self._matrix(), {})
        (cache.entry_dir("k2", key) / "csr.npz").write_bytes(b"garbage")
        assert cache.load_csr("k2", fields) is None
        assert not cache.entry_dir("k2", key).exists()


class TestK2CacheFields:
    def test_k2_key_differs_from_k1(self):
        config = PipelineConfig(scale=6)
        assert (cache_key(k2_cache_fields(config))
                != cache_key(k1_cache_fields(config)))

    def test_k2_key_ignores_execution_and_batch(self):
        base = PipelineConfig(scale=6)
        variant = base.with_overrides(execution="streaming",
                                      streaming_batch_edges=128)
        assert (cache_key(k2_cache_fields(base))
                == cache_key(k2_cache_fields(variant)))

    def test_k2_key_tracks_arithmetic_variant(self):
        # A backend's serial kernel2 and the CSR-assembly path can
        # differ in the last ulp (dataframe normalisation), so their
        # cached matrices must never be interchangeable.
        config = PipelineConfig(scale=6)
        assert (cache_key(k2_cache_fields(config, variant="backend-serial"))
                != cache_key(k2_cache_fields(config, variant="streaming-csr")))

    def test_k2_key_tracks_backend_and_sort(self):
        base = PipelineConfig(scale=6)
        assert (cache_key(k2_cache_fields(base))
                != cache_key(k2_cache_fields(base.with_overrides(
                    backend="numpy"))))
        assert (cache_key(k2_cache_fields(base))
                != cache_key(k2_cache_fields(base.with_overrides(
                    sort_by_end_vertex=True))))


class TestK2WarmRuns:
    @pytest.mark.parametrize("execution", ["serial", "streaming", "async"])
    def test_second_run_skips_k2(self, tmp_path, execution):
        config = PipelineConfig(scale=7, seed=4, backend="scipy",
                                execution=execution,
                                cache_dir=tmp_path / "c")
        first = run_pipeline(config)
        second = run_pipeline(config)
        k2_first = first.kernel(KernelName.K2_FILTER)
        k2_second = second.kernel(KernelName.K2_FILTER)
        assert k2_first.details["artifact_cache"] == "miss"
        assert k2_second.details["artifact_cache"] == "hit"
        assert k2_second.cached
        np.testing.assert_array_equal(first.rank, second.rank)

    def test_warm_matrix_shared_between_csr_strategies(self, tmp_path):
        # Streaming and async share one arithmetic path, so they share
        # K2 entries; the serial path keys separately (its kernel2 may
        # differ in the last ulp on some backends).
        cache = tmp_path / "c"
        base = PipelineConfig(scale=7, seed=9, backend="scipy",
                              cache_dir=cache, execution="streaming")
        cold = run_pipeline(base)
        warm = run_pipeline(base.with_overrides(execution="async"))
        assert (warm.kernel(KernelName.K2_FILTER)
                .details["artifact_cache"] == "hit")
        np.testing.assert_array_equal(cold.rank, warm.rank)
        serial = run_pipeline(base.with_overrides(execution="serial"))
        assert (serial.kernel(KernelName.K2_FILTER)
                .details["artifact_cache"] == "miss")

    def test_warm_cache_never_changes_dataframe_bits(self, tmp_path):
        # The regression the variant key exists for: a serial dataframe
        # run must produce the same bits whether or not a streaming run
        # warmed the cache first.
        cold = run_pipeline(PipelineConfig(scale=6, seed=3,
                                           backend="dataframe"))
        cache = tmp_path / "c"
        run_pipeline(PipelineConfig(scale=6, seed=3, backend="dataframe",
                                    execution="streaming", cache_dir=cache))
        warmed = run_pipeline(PipelineConfig(scale=6, seed=3,
                                             backend="dataframe",
                                             cache_dir=cache))
        np.testing.assert_array_equal(warmed.rank, cold.rank)

    def test_python_backend_skips_k2_cache(self, tmp_path):
        # No adjacency_from_csr => the cache must not be consulted.
        config = PipelineConfig(scale=6, seed=1, backend="python",
                                cache_dir=tmp_path / "c")
        run_pipeline(config)
        result = run_pipeline(config)
        k2 = result.kernel(KernelName.K2_FILTER)
        assert "artifact_cache" not in k2.details
        assert not (tmp_path / "c" / "k2").exists()
