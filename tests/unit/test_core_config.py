"""Unit tests for PipelineConfig, KernelName, and Table II data."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import (
    KernelName,
    PipelineConfig,
    TABLE2_BYTES_PER_EDGE,
    run_sizes_table,
)


class TestKernelName:
    def test_order(self):
        names = list(KernelName)
        assert names[0] is KernelName.K0_GENERATE
        assert names[-1] is KernelName.K3_PAGERANK
        assert KernelName.K2_FILTER.index == 2


class TestPipelineConfig:
    def test_derived_sizes(self):
        config = PipelineConfig(scale=16)
        assert config.num_vertices == 65536
        assert config.num_edges == 16 * 65536
        assert config.memory_bytes == config.num_edges * 16

    def test_defaults_match_paper(self):
        config = PipelineConfig(scale=10)
        assert config.edge_factor == 16
        assert config.damping == 0.85
        assert config.iterations == 20

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PipelineConfig(scale=0)
        with pytest.raises(ValueError):
            PipelineConfig(scale=4, damping=1.5)
        with pytest.raises(ValueError):
            PipelineConfig(scale=4, vertex_base=2)
        with pytest.raises(ValueError):
            PipelineConfig(scale=4, file_format="csv")
        with pytest.raises(ValueError):
            PipelineConfig(scale=4, formula="wrong")
        with pytest.raises(ValueError):
            PipelineConfig(scale=4, num_files=0)

    def test_dict_round_trip(self):
        config = PipelineConfig(scale=8, backend="numpy",
                                data_dir=Path("/tmp/x"), num_files=3)
        restored = PipelineConfig.from_dict(config.to_dict())
        assert restored == config

    def test_json_is_stable(self):
        config = PipelineConfig(scale=8)
        assert config.to_json() == PipelineConfig(scale=8).to_json()

    def test_with_overrides(self):
        config = PipelineConfig(scale=8)
        other = config.with_overrides(scale=9, backend="numpy")
        assert other.scale == 9 and other.backend == "numpy"
        assert config.scale == 8  # original untouched

    def test_hashable(self):
        assert len({PipelineConfig(scale=8), PipelineConfig(scale=8)}) == 1


class TestRunSizesTable:
    def test_default_covers_paper_scales(self):
        rows = run_sizes_table()
        assert [r.scale for r in rows] == list(range(16, 23))

    def test_scale16_matches_paper_row(self):
        row = run_sizes_table([16])[0]
        assert row.max_vertices == 65536      # "65K"
        assert row.max_edges == 1048576       # "1M"
        # Paper prints 25MB, which implies ~24 B/edge (its text says 16).
        assert row.memory_bytes == 1048576 * TABLE2_BYTES_PER_EDGE
        assert 24e6 < row.memory_bytes < 26e6

    def test_scale22_matches_paper_row(self):
        row = run_sizes_table([22])[0]
        assert row.max_vertices == 4194304    # "4M"
        assert row.max_edges == 67108864      # "67M"
        assert 1.55e9 < row.memory_bytes < 1.65e9   # "1.6GB"

    def test_doubling_per_scale(self):
        rows = run_sizes_table([10, 11, 12])
        assert rows[1].max_edges == 2 * rows[0].max_edges
        assert rows[2].max_vertices == 4 * rows[0].max_vertices
