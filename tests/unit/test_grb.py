"""Unit tests for the GraphBLAS-lite substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grb import (
    LOR_LAND,
    MAX_TIMES,
    MIN_PLUS,
    Matrix,
    PLUS_TIMES,
    Vector,
    available_semirings,
    get_semiring,
    mxv,
    vxm,
)
from repro.grb.semiring import MAX, MIN, PLUS


class TestMonoid:
    def test_reduce_empty_gives_identity(self):
        assert PLUS.reduce(np.array([])) == 0.0
        assert MIN.reduce(np.array([])) == np.inf

    def test_segment_reduce_basic(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        offsets = np.array([0, 2, 2, 4])
        out = PLUS.segment_reduce(values, offsets)
        assert np.array_equal(out, [3.0, 0.0, 7.0])

    def test_segment_reduce_trailing_empty(self):
        values = np.array([5.0])
        offsets = np.array([0, 1, 1])
        out = MAX.segment_reduce(values, offsets)
        assert out[0] == 5.0 and out[1] == -np.inf

    def test_segment_reduce_all_empty(self):
        out = PLUS.segment_reduce(np.array([]), np.array([0, 0, 0]))
        assert np.array_equal(out, [0.0, 0.0])

    def test_segment_reduce_min(self):
        values = np.array([3.0, 1.0, 2.0])
        offsets = np.array([0, 2, 3])
        out = MIN.segment_reduce(values, offsets)
        assert np.array_equal(out, [1.0, 2.0])


class TestSemiringRegistry:
    def test_contains_standards(self):
        names = set(available_semirings())
        assert {"plus_times", "min_plus", "max_times", "lor_land"} <= names

    def test_lookup(self):
        assert get_semiring("plus_times") is PLUS_TIMES

    def test_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_semiring("times_plus")


class TestVector:
    def test_constructors(self):
        assert Vector.zeros(3).to_dense().sum() == 0.0
        assert Vector.full(3, 2.0).reduce() == 6.0
        assert Vector.from_dense([1, 2]).size == 2

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Vector(np.zeros((2, 2)))

    def test_reduce_and_norm(self):
        x = Vector.from_dense([-1.0, 2.0])
        assert x.reduce() == 1.0
        assert x.norm1() == 3.0

    def test_apply_shape_guard(self):
        x = Vector.from_dense([1.0, 2.0])
        with pytest.raises(ValueError):
            x.apply(lambda a: a[:1])

    def test_ewise_ops(self):
        x = Vector.from_dense([1.0, 2.0])
        y = Vector.from_dense([3.0, 4.0])
        assert x.ewise_add(y).to_dense().tolist() == [4.0, 6.0]
        assert x.ewise_mult(y).to_dense().tolist() == [3.0, 8.0]

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            Vector.zeros(2).ewise_add(Vector.zeros(3))

    def test_values_view_is_readonly(self):
        x = Vector.from_dense([1.0])
        with pytest.raises(ValueError):
            x.values[0] = 2.0

    def test_scale_and_isclose(self):
        x = Vector.from_dense([1.0, 2.0])
        assert x.scale(2.0).isclose(Vector.from_dense([2.0, 4.0]))


class TestMatrixBuild:
    def test_duplicate_accumulation(self):
        rows = np.array([0, 0, 1], dtype=np.int64)
        cols = np.array([1, 1, 0], dtype=np.int64)
        m = Matrix.build(rows, cols, nrows=2, ncols=2)
        assert m.nvals == 2
        assert m.reduce_scalar() == 3.0  # sums to edge count (K2 contract)
        assert m.to_dense()[0, 1] == 2.0

    def test_custom_dup_monoid(self):
        rows = np.array([0, 0], dtype=np.int64)
        cols = np.array([0, 0], dtype=np.int64)
        vals = np.array([3.0, 5.0])
        m = Matrix.build(rows, cols, vals, nrows=1, ncols=1, dup=MAX)
        assert m.to_dense()[0, 0] == 5.0

    def test_empty_build(self):
        empty = np.empty(0, dtype=np.int64)
        m = Matrix.build(empty, empty, nrows=3, ncols=3)
        assert m.nvals == 0
        assert m.reduce_scalar() == 0.0

    def test_bounds_checked(self):
        with pytest.raises(ValueError, match="row indices"):
            Matrix.build(np.array([5]), np.array([0]), nrows=2, ncols=2)
        with pytest.raises(ValueError, match="col indices"):
            Matrix.build(np.array([0]), np.array([5]), nrows=2, ncols=2)

    def test_from_dense_round_trip(self, rng):
        dense = (rng.random((5, 4)) < 0.4) * rng.random((5, 4))
        m = Matrix.from_dense(dense)
        assert np.allclose(m.to_dense(), dense)

    def test_invalid_row_ptr_rejected(self):
        with pytest.raises(ValueError):
            Matrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))


class TestMatrixOps:
    @pytest.fixture
    def sample(self):
        dense = np.array(
            [
                [0.0, 2.0, 0.0],
                [1.0, 0.0, 3.0],
                [0.0, 0.0, 0.0],
            ]
        )
        return Matrix.from_dense(dense), dense

    def test_reductions(self, sample):
        m, dense = sample
        assert np.allclose(m.reduce_rows(), dense.sum(axis=1))
        assert np.allclose(m.reduce_columns(), dense.sum(axis=0))
        assert m.reduce_scalar() == dense.sum()

    def test_reduce_columns_max(self, sample):
        m, dense = sample
        out = m.reduce_columns(MAX)
        # Empty columns give the monoid identity.
        expected = np.where(dense.any(axis=0), dense.max(axis=0), -np.inf)
        assert np.allclose(out, expected)

    def test_clear_columns(self, sample):
        m, dense = sample
        cleared = m.clear_columns(np.array([False, True, False]))
        expected = dense.copy()
        expected[:, 1] = 0.0
        assert np.allclose(cleared.to_dense(), expected)
        assert cleared.nvals == 2

    def test_clear_columns_mask_length(self, sample):
        m, _ = sample
        with pytest.raises(ValueError):
            m.clear_columns(np.array([True]))

    def test_scale_rows(self, sample):
        m, dense = sample
        scaled = m.scale_rows(np.array([1.0, 0.5, 2.0]))
        assert np.allclose(scaled.to_dense(), dense * [[1.0], [0.5], [2.0]])

    def test_transpose(self, sample):
        m, dense = sample
        assert np.allclose(m.transpose().to_dense(), dense.T)

    def test_prune_and_select(self, sample):
        m, _ = sample
        with_zero = m.apply(lambda vals: np.where(vals == 2.0, 0.0, vals))
        assert with_zero.nvals == 3
        assert with_zero.prune().nvals == 2
        big = m.select(lambda vals: vals >= 2.0)
        assert big.nvals == 2

    def test_extract_row(self, sample):
        m, _ = sample
        cols, vals = m.extract_row(1)
        assert np.array_equal(cols, [0, 2])
        assert np.array_equal(vals, [1.0, 3.0])
        with pytest.raises(IndexError):
            m.extract_row(5)

    def test_isclose(self, sample):
        m, dense = sample
        assert m.isclose(Matrix.from_dense(dense))
        assert not m.isclose(Matrix.from_dense(dense * 2))

    def test_to_coo_round_trip(self, sample):
        m, _ = sample
        rows, cols, vals = m.to_coo()
        rebuilt = Matrix.build(rows, cols, vals, nrows=3, ncols=3)
        assert rebuilt.isclose(m)


class TestProducts:
    @pytest.fixture
    def chain(self):
        # 0 -> 1 -> 2 directed path with weight 1.
        return Matrix.from_dense(
            np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
        )

    def test_vxm_plus_times(self, chain):
        x = Vector.from_dense([1.0, 2.0, 4.0])
        y = vxm(x, chain)
        assert y.to_dense().tolist() == [0.0, 1.0, 2.0]

    def test_mxv_plus_times(self, chain):
        x = Vector.from_dense([1.0, 2.0, 4.0])
        y = mxv(chain, x)
        assert y.to_dense().tolist() == [2.0, 4.0, 0.0]

    def test_vxm_matches_dense(self, rng):
        dense = (rng.random((6, 6)) < 0.5) * rng.random((6, 6))
        m = Matrix.from_dense(dense)
        x = rng.random(6)
        got = vxm(Vector(x), m).to_dense()
        assert np.allclose(got, x @ dense)

    def test_mxv_matches_dense(self, rng):
        dense = (rng.random((6, 6)) < 0.5) * rng.random((6, 6))
        m = Matrix.from_dense(dense)
        x = rng.random(6)
        assert np.allclose(mxv(m, Vector(x)).to_dense(), dense @ x)

    def test_min_plus_shortest_path_relaxation(self):
        # One Bellman-Ford relaxation: dist'[j] = min_i(dist[i] + w[i,j]).
        inf = np.inf
        m = Matrix.from_dense(
            np.array([[0.0, 2.0, 0.0], [0.0, 0.0, 3.0], [0.0, 0.0, 0.0]])
        )  # edges 0->1 (w=2), 1->2 (w=3); absent entries are +inf
        dist = Vector.from_dense([0.0, inf, inf])
        step1 = vxm(dist, m, MIN_PLUS)
        assert step1.to_dense()[1] == 2.0          # reached 1 at cost 2
        assert step1.to_dense()[0] == inf          # no in-edges to 0
        step2 = vxm(Vector.from_dense(np.minimum(dist.to_dense(),
                                                 step1.to_dense())),
                    m, MIN_PLUS)
        assert step2.to_dense()[2] == 5.0          # 0 -> 1 -> 2 costs 2+3

    def test_lor_land_reachability(self):
        adj = Matrix.from_dense(
            np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
        )
        frontier = Vector.from_dense([1.0, 0.0, 0.0])
        reached = vxm(frontier, adj, LOR_LAND)
        assert reached.to_dense().tolist() == [0.0, 1.0, 0.0]

    def test_max_times(self):
        m = Matrix.from_dense(np.array([[0.5, 2.0], [0.0, 0.0]]))
        x = Vector.from_dense([2.0, 3.0])
        y = vxm(x, m, MAX_TIMES)
        assert y.to_dense().tolist() == [1.0, 4.0]

    def test_size_mismatch(self, chain):
        with pytest.raises(ValueError):
            vxm(Vector.zeros(2), chain)
        with pytest.raises(ValueError):
            mxv(chain, Vector.zeros(2))
