"""Unit tests for the out-of-core external sort."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edgeio.dataset import EdgeDataset
from repro.sort.external import (
    ExternalSortConfig,
    external_sort_dataset,
    merge_sorted_arrays,
)


def _write_random_dataset(tmp_path, rng, m=2000, n=128, shards=4):
    u = rng.integers(0, n, size=m).astype(np.int64)
    v = rng.integers(0, n, size=m).astype(np.int64)
    ds = EdgeDataset.write(tmp_path / "in", u, v, num_vertices=n,
                           num_shards=shards)
    return ds, u, v


class TestExternalSort:
    def test_sorted_and_complete(self, tmp_path, rng):
        ds, u, v = _write_random_dataset(tmp_path, rng)
        out = external_sort_dataset(
            ds, tmp_path / "out",
            config=ExternalSortConfig(batch_edges=128, merge_block_edges=64),
        )
        su, sv = out.read_all()
        assert np.all(np.diff(su) >= 0)
        assert np.array_equal(np.sort(u * 128 + v), np.sort(su * 128 + sv))

    def test_multipass_merge(self, tmp_path, rng):
        # 2000 edges / 64-edge runs = 32 runs > fan_in 3 => multi-pass.
        ds, u, v = _write_random_dataset(tmp_path, rng)
        out = external_sort_dataset(
            ds, tmp_path / "out",
            config=ExternalSortConfig(batch_edges=64, fan_in=3,
                                      merge_block_edges=32),
        )
        su, sv = out.read_all()
        assert np.all(np.diff(su) >= 0)
        assert len(su) == ds.num_edges

    def test_matches_in_memory_sort(self, tmp_path, rng):
        ds, u, v = _write_random_dataset(tmp_path, rng, m=777, n=32)
        out = external_sort_dataset(
            ds, tmp_path / "out",
            config=ExternalSortConfig(batch_edges=100, merge_block_edges=37),
        )
        su, _ = out.read_all()
        assert np.array_equal(su, np.sort(u))

    def test_by_end_vertex(self, tmp_path, rng):
        ds, u, v = _write_random_dataset(tmp_path, rng, m=900, n=16)
        out = external_sort_dataset(
            ds, tmp_path / "out", by_end_vertex=True,
            config=ExternalSortConfig(batch_edges=64, fan_in=3,
                                      merge_block_edges=16),
        )
        su, sv = out.read_all()
        keys = su * 16 + sv
        assert np.all(np.diff(keys) >= 0)

    def test_preserves_format_and_base(self, tmp_path, rng):
        u = rng.integers(0, 8, size=100).astype(np.int64)
        v = rng.integers(0, 8, size=100).astype(np.int64)
        ds = EdgeDataset.write(tmp_path / "in", u, v, num_vertices=8,
                               vertex_base=1, fmt="tsv")
        out = external_sort_dataset(ds, tmp_path / "out")
        assert out.manifest.vertex_base == 1
        assert out.fmt == "tsv"

    def test_output_shard_count(self, tmp_path, rng):
        ds, _, _ = _write_random_dataset(tmp_path, rng)
        out = external_sort_dataset(ds, tmp_path / "out", num_shards=6)
        assert out.num_shards == 6

    def test_empty_dataset(self, tmp_path):
        empty = np.empty(0, dtype=np.int64)
        ds = EdgeDataset.write(tmp_path / "in", empty, empty, num_vertices=4)
        out = external_sort_dataset(ds, tmp_path / "out")
        assert out.num_edges == 0
        EdgeDataset.open(tmp_path / "out")  # valid dataset with manifest

    def test_spill_dir_cleaned_up(self, tmp_path, rng):
        import os

        ds, _, _ = _write_random_dataset(tmp_path, rng, m=500)
        spill = tmp_path / "spill"
        external_sort_dataset(
            ds, tmp_path / "out",
            config=ExternalSortConfig(batch_edges=64, tmp_dir=spill),
        )
        # Caller-provided tmp dir is kept but runs inside are deleted.
        leftovers = [f for f in os.listdir(spill) if f.endswith(".bin")]
        assert leftovers == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExternalSortConfig(batch_edges=0)
        with pytest.raises(ValueError):
            ExternalSortConfig(fan_in=1)

    def test_duplicate_heavy_input(self, tmp_path, rng):
        # Keys spanning merge-block boundaries must stay correct.
        u = np.repeat(np.array([3, 1, 2], dtype=np.int64), 300)
        v = rng.integers(0, 8, size=900).astype(np.int64)
        ds = EdgeDataset.write(tmp_path / "in", u, v, num_vertices=8)
        out = external_sort_dataset(
            ds, tmp_path / "out",
            config=ExternalSortConfig(batch_edges=100, merge_block_edges=16),
        )
        su, _ = out.read_all()
        assert np.array_equal(su, np.sort(u))


class TestMergeSortedArrays:
    def test_merges(self):
        a = (np.array([0, 2, 4], dtype=np.int64), np.array([1, 1, 1], dtype=np.int64))
        b = (np.array([1, 3], dtype=np.int64), np.array([2, 2], dtype=np.int64))
        u, v = merge_sorted_arrays([a, b])
        assert np.array_equal(u, [0, 1, 2, 3, 4])
        assert np.array_equal(v, [1, 2, 1, 2, 1])

    def test_rejects_unsorted(self):
        bad = (np.array([2, 1], dtype=np.int64), np.array([0, 0], dtype=np.int64))
        with pytest.raises(ValueError, match="sorted"):
            merge_sorted_arrays([bad])

    def test_empty_inputs(self):
        empty = (np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        u, v = merge_sorted_arrays([empty, empty])
        assert len(u) == 0
