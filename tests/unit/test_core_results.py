"""Unit tests for KernelResult / PipelineResult."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import KernelName, PipelineConfig
from repro.core.results import KernelResult, PipelineResult


class TestKernelResult:
    def test_edges_per_second(self):
        result = KernelResult(KernelName.K1_SORT, seconds=2.0,
                              edges_processed=100)
        assert result.edges_per_second == 50.0

    def test_zero_time_gives_inf(self):
        result = KernelResult(KernelName.K1_SORT, seconds=0.0,
                              edges_processed=100)
        assert result.edges_per_second == float("inf")

    def test_to_dict_json_safe(self):
        result = KernelResult(
            KernelName.K2_FILTER, seconds=1.0, edges_processed=10,
            details={"nnz": np.int64(5), "ratio": np.float64(0.5),
                     "flags": np.array([1, 2])},
        )
        doc = result.to_dict()
        json.dumps(doc)  # must not raise
        assert doc["details"]["nnz"] == 5
        assert doc["details"]["flags"] == [1, 2]


class TestPipelineResult:
    @pytest.fixture
    def result(self):
        config = PipelineConfig(scale=6)
        res = PipelineResult(config=config)
        res.kernels = [
            KernelResult(KernelName.K0_GENERATE, 1.0, 64, officially_timed=False),
            KernelResult(KernelName.K1_SORT, 2.0, 64),
            KernelResult(KernelName.K2_FILTER, 3.0, 64),
            KernelResult(KernelName.K3_PAGERANK, 4.0, 64 * 20),
        ]
        res.rank = np.array([0.5, 0.25, 0.25])
        return res

    def test_kernel_lookup(self, result):
        assert result.kernel(KernelName.K1_SORT).seconds == 2.0

    def test_kernel_lookup_missing(self, result):
        result.kernels = result.kernels[:1]
        with pytest.raises(KeyError):
            result.kernel(KernelName.K3_PAGERANK)

    def test_total_vs_benchmark_seconds(self, result):
        assert result.total_seconds == 10.0
        assert result.benchmark_seconds == 9.0  # K0 excluded

    def test_to_dict_summarises_rank(self, result):
        doc = result.to_dict()
        assert doc["rank_summary"]["size"] == 3
        assert doc["rank_summary"]["argmax"] == 0
        json.dumps(doc)

    def test_to_json_round_trips_config(self, result):
        doc = json.loads(result.to_json())
        assert doc["config"]["scale"] == 6
