"""Per-entry cache locks: eviction cannot race a concurrent reader."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.artifacts import ArtifactCache, EntryLock
from repro.edgeio.dataset import EdgeDataset

N_VERTICES = 8
N_EDGES = 64


def _producer(out_dir):
    u = np.arange(N_EDGES, dtype=np.int64) % N_VERTICES
    v = (np.arange(N_EDGES, dtype=np.int64) * 3) % N_VERTICES
    dataset = EdgeDataset.write(
        out_dir, u, v, num_vertices=N_VERTICES, num_shards=2
    )
    return dataset, {"num_edges": N_EDGES}


FIELDS = {"kernel": "k0", "test": "lock-suite"}


class TestEntryLock:
    def test_shared_locks_coexist(self, tmp_path):
        a = EntryLock(tmp_path / "e.lock")
        b = EntryLock(tmp_path / "e.lock")
        assert a.acquire(shared=True)
        assert b.acquire(shared=True, blocking=False)
        a.release()
        b.release()

    def test_exclusive_blocked_by_shared(self, tmp_path):
        reader = EntryLock(tmp_path / "e.lock")
        evictor = EntryLock(tmp_path / "e.lock")
        assert reader.acquire(shared=True)
        assert not evictor.acquire(shared=False, blocking=False)
        reader.release()
        assert evictor.acquire(shared=False, blocking=False)
        evictor.release()

    def test_release_is_idempotent(self, tmp_path):
        lock = EntryLock(tmp_path / "e.lock")
        lock.acquire(shared=True)
        lock.release()
        lock.release()
        assert not lock.held

    def test_double_acquire_refused(self, tmp_path):
        lock = EntryLock(tmp_path / "e.lock")
        lock.acquire(shared=True)
        with pytest.raises(RuntimeError, match="already held"):
            lock.acquire(shared=True)
        lock.release()


class TestCacheEvictionRespectsLocks:
    def test_prune_skips_entry_held_by_reader(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        held = []
        dataset, details = cache.dataset("k0", FIELDS, _producer, hold=held)
        assert details["artifact_cache"] == "miss"
        assert len(held) == 1
        # The reader still holds the entry: prune(0) must not evict it.
        assert cache.prune(0) == []
        assert dataset.num_edges == N_EDGES  # still readable
        u, v = dataset.read_all()
        assert len(u) == N_EDGES
        # Released, the same prune empties the cache.
        held.pop().release()
        assert len(cache.prune(0)) == 1
        assert cache.entries() == []

    def test_remove_skips_entry_held_by_reader(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        held = []
        cache.dataset("k0", FIELDS, _producer, hold=held)
        key = cache.entries()[0].key
        assert cache.remove(key) == []
        held.pop().release()
        assert len(cache.remove(key)) == 1

    def test_hit_after_eviction_regenerates(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.dataset("k0", FIELDS, _producer)  # no hold: lock released
        assert len(cache.prune(0)) == 1
        dataset, details = cache.dataset("k0", FIELDS, _producer)
        assert details["artifact_cache"] == "miss"
        assert dataset.num_edges == N_EDGES

    def test_lock_files_not_listed_as_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.dataset("k0", FIELDS, _producer)
        entries = cache.entries()
        assert len(entries) == 1
        assert not entries[0].key.endswith(".lock")


class TestStaleStagingReclaim:
    def test_prune_collects_crashed_staging_but_not_fresh(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path)
        cache.dataset("k0", FIELDS, _producer)
        stale = tmp_path / "k0" / "deadbeef.tmp-crashed"
        stale.mkdir(parents=True)
        (stale / "part-00000.tsv").write_text("0\t1\t1\n")
        old = 1_000_000.0  # epoch 1970: well past any staleness cutoff
        os.utime(stale / "part-00000.tsv", (old, old))
        os.utime(stale, (old, old))
        fresh = tmp_path / "k0" / "cafef00d.tmp-live"
        fresh.mkdir(parents=True)
        cache.prune(1 << 30)  # budget large: no entry eviction
        assert not stale.exists()  # crashed producer's leak reclaimed
        assert fresh.exists()  # a live produce is never touched
        assert len(cache.entries()) == 1

    def test_lock_files_survive_eviction(self, tmp_path):
        # The lock file is the flock rendezvous for its key: deleting
        # it would strand blocked waiters on an orphaned inode.
        cache = ArtifactCache(tmp_path)
        cache.dataset("k0", FIELDS, _producer)
        key = cache.entries()[0].key
        lock_path = cache.entry_lock("k0", key).path
        assert lock_path.exists()
        assert len(cache.prune(0)) == 1
        assert lock_path.exists()


class TestLockStress:
    """Readers hammer one entry while a pruner loops ``prune(0)``.

    Without per-entry locks this interleaving tears shards out from
    under `read_all`; with them every read either sees the full dataset
    or regenerates it from a clean miss.
    """

    def test_concurrent_readers_survive_prune_loop(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        deadline = time.monotonic() + 3.0
        errors = []
        reads = []

        def reader():
            while time.monotonic() < deadline:
                held = []
                try:
                    dataset, _ = cache.dataset(
                        "k0", FIELDS, _producer, hold=held
                    )
                    u, v = dataset.read_all()
                    if len(u) != N_EDGES or len(v) != N_EDGES:
                        errors.append(f"torn read: {len(u)}/{len(v)} edges")
                except Exception as exc:  # noqa: BLE001 - collecting
                    errors.append(f"{type(exc).__name__}: {exc}")
                finally:
                    while held:
                        held.pop().release()
                reads.append(1)

        def pruner():
            while time.monotonic() < deadline:
                try:
                    cache.prune(0)
                except Exception as exc:  # noqa: BLE001 - collecting
                    errors.append(f"pruner {type(exc).__name__}: {exc}")
                time.sleep(0.001)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=pruner))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert len(reads) > 0
