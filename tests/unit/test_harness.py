"""Unit tests for the harness: records, sloc, tables, figures, sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import KernelName, PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.harness.experiments import available_experiments, run_experiment
from repro.harness.figures import build_figure_series, render_figure
from repro.harness.records import (
    MeasurementRecord,
    by_backend,
    kernel_records,
    load_records,
    save_records,
)
from repro.harness.sloc import backend_sloc_table, count_sloc
from repro.harness.sweep import SweepPlan, run_sweep
from repro.harness.tables import (
    PAPER_TABLE1,
    render_run_sizes,
    render_sloc,
    render_table,
    run_sizes_rows,
)


class TestSloc:
    def test_counts_code_only(self):
        source = (
            '"""Module docstring."""\n'
            "\n"
            "# a comment\n"
            "x = 1\n"
            "\n"
            "def f():\n"
            '    """Doc."""\n'
            "    return x  # trailing comment counts as code\n"
        )
        assert count_sloc(source) == 3  # x=1, def f, return x

    def test_multiline_docstring_excluded(self):
        source = 'def f():\n    """Line1\n    Line2\n    """\n    return 1\n'
        assert count_sloc(source) == 2

    def test_empty_source(self):
        assert count_sloc("") == 0

    def test_backend_table_covers_all(self):
        table = backend_sloc_table()
        assert set(table) == {"python", "numpy", "scipy", "dataframe",
                              "graphblas"}
        assert all(count > 50 for count in table.values())

    def test_pure_python_largest(self):
        # The lowest-level implementation needs the most lines — the
        # paper's C++ row, transposed into our backend set.
        table = backend_sloc_table()
        assert table["python"] == max(table.values())


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # uniform width

    def test_render_table_cell_count_guard(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_run_sizes_rows_formats_like_paper(self):
        rows = run_sizes_rows([16, 22])
        assert rows[0][1] == "65K"
        assert rows[0][2] == "1M"
        assert rows[1][1] == "4M"
        assert rows[1][2] == "67M"
        assert rows[1][3] == "1.6GB"

    def test_render_run_sizes_contains_title(self):
        assert "Table II" in render_run_sizes()

    def test_render_sloc_includes_paper_numbers(self):
        text = render_sloc()
        assert "494" in text  # paper's C++ row
        assert "python" in text

    def test_paper_table1_reference_values(self):
        assert PAPER_TABLE1["C++"] == 494
        assert PAPER_TABLE1["Matlab"] == 102


class TestRecords:
    def _records(self):
        result = run_pipeline(PipelineConfig(scale=6, seed=1, backend="numpy"))
        return MeasurementRecord.from_result(result)

    def test_from_result_one_per_kernel(self):
        records = self._records()
        assert len(records) == 4
        assert {r.kernel for r in records} == {k.value for k in KernelName}

    def test_json_round_trip(self, tmp_path):
        records = self._records()
        save_records(records, tmp_path / "r.json")
        assert load_records(tmp_path / "r.json") == records

    def test_csv_round_trip(self, tmp_path):
        records = self._records()
        save_records(records, tmp_path / "r.csv")
        assert load_records(tmp_path / "r.csv") == records

    def test_filters(self):
        records = self._records()
        k3 = kernel_records(records, KernelName.K3_PAGERANK)
        assert len(k3) == 1
        grouped = by_backend(records)
        assert set(grouped) == {"numpy"}


class TestSweep:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            SweepPlan(scales=[], backends=["scipy"])
        with pytest.raises(ValueError):
            SweepPlan(scales=[6], backends=[])
        with pytest.raises(ValueError):
            SweepPlan(scales=[6], backends=["scipy"], repeats=0)

    def test_configs_grid(self):
        plan = SweepPlan(scales=[6, 7], backends=["scipy", "numpy"])
        configs = plan.configs()
        assert len(configs) == 4
        assert {(c.backend, c.scale) for c in configs} == {
            ("scipy", 6), ("scipy", 7), ("numpy", 6), ("numpy", 7),
        }

    def test_run_sweep_produces_grid_records(self):
        plan = SweepPlan(scales=[6], backends=["scipy", "numpy"], seed=3)
        records = run_sweep(plan)
        assert len(records) == 8  # 2 backends x 4 kernels
        assert {r.backend for r in records} == {"scipy", "numpy"}

    def test_repeats_keep_fastest(self):
        plan = SweepPlan(scales=[6], backends=["scipy"], repeats=2, seed=3)
        records = run_sweep(plan)
        assert len(records) == 4  # still one per kernel

    def test_progress_callback(self):
        calls = []
        plan = SweepPlan(scales=[6], backends=["scipy"], seed=3)
        run_sweep(plan, progress=lambda cfg, rep: calls.append((cfg.backend, rep)))
        assert calls == [("scipy", 0)]


class TestFigures:
    def _records(self):
        plan = SweepPlan(scales=[6, 7], backends=["scipy", "numpy"], seed=2)
        return run_sweep(plan)

    def test_build_series_shape(self):
        figure = build_figure_series("fig7", self._records())
        assert figure.kernel is KernelName.K3_PAGERANK
        assert set(figure.series) == {"scipy", "numpy"}
        for points in figure.series.values():
            ms = [m for m, _ in points]
            assert ms == sorted(ms)
            assert len(points) == 2

    def test_unknown_figure(self):
        with pytest.raises(KeyError, match="available"):
            build_figure_series("fig9", [])

    def test_render_contains_legend_and_data(self):
        figure = build_figure_series("fig5", self._records())
        text = render_figure(figure)
        assert "Figure 5" in text
        assert "scipy" in text and "numpy" in text
        assert "M=" in text

    def test_render_empty_series(self):
        figure = build_figure_series("fig4", [])
        assert "(no data)" in render_figure(figure)


class TestExperiments:
    def test_registry_lists_all_paper_artifacts(self):
        ids = set(available_experiments())
        assert ids == {"table1", "table2", "fig4", "fig5", "fig6", "fig7"}

    def test_table_experiments_run(self):
        assert "Table II" in run_experiment("table2").text
        assert "Source Lines" in run_experiment("table1").text

    def test_figure_experiment_runs_small(self):
        output = run_experiment("fig7", scales=[6], backends=["scipy"])
        assert "Figure 7" in output.text
        assert len(output.records) == 4

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")
