"""Unit tests for GraphBLAS-lite mxm, element-wise ops, and algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grb import (
    Matrix,
    MIN_PLUS,
    PLUS_TIMES,
    apply_mask,
    bfs_levels,
    connected_components,
    ewise_add,
    ewise_mult,
    mxm,
    pagerank_grb,
    triangle_count,
)


def _random_matrix(rng, n=8, density=0.3):
    dense = (rng.random((n, n)) < density) * rng.integers(1, 5, (n, n))
    return Matrix.from_dense(dense.astype(float)), dense.astype(float)


class TestMxm:
    def test_matches_dense_product(self, rng):
        a, da = _random_matrix(rng)
        b, db = _random_matrix(rng)
        assert np.allclose(mxm(a, b).to_dense(), da @ db)

    def test_identity(self):
        eye = Matrix.from_dense(np.eye(4))
        a = Matrix.from_dense(np.arange(16.0).reshape(4, 4) % 3)
        assert mxm(a, eye).isclose(a.prune())
        assert mxm(eye, a).isclose(a.prune())

    def test_empty_operands(self):
        empty = Matrix.empty(3, 3)
        a = Matrix.from_dense(np.ones((3, 3)))
        assert mxm(empty, a).nvals == 0
        assert mxm(a, empty).nvals == 0

    def test_rectangular(self, rng):
        da = (rng.random((3, 5)) < 0.5).astype(float)
        db = (rng.random((5, 2)) < 0.5).astype(float)
        product = mxm(Matrix.from_dense(da), Matrix.from_dense(db))
        assert product.shape == (3, 2)
        assert np.allclose(product.to_dense(), da @ db)

    def test_dimension_mismatch(self):
        a = Matrix.empty(2, 3)
        b = Matrix.empty(2, 3)
        with pytest.raises(ValueError, match="inner dimensions"):
            mxm(a, b)

    def test_min_plus_two_hop_distances(self):
        # Weighted path 0 -2-> 1 -3-> 2; min-plus square gives 0->2 = 5.
        w = Matrix.from_dense(
            np.array([[0.0, 2.0, 0.0], [0.0, 0.0, 3.0], [0.0, 0.0, 0.0]])
        )
        two_hop = mxm(w, w, MIN_PLUS)
        assert two_hop.to_dense()[0, 2] == 5.0


class TestEwise:
    def test_mult_intersection(self):
        a = Matrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
        b = Matrix.from_dense(np.array([[5.0, 0.0], [7.0, 2.0]]))
        out = ewise_mult(a, b)
        assert np.allclose(out.to_dense(), [[5.0, 0.0], [0.0, 6.0]])
        assert out.nvals == 2

    def test_add_union(self):
        a = Matrix.from_dense(np.array([[1.0, 0.0], [0.0, 3.0]]))
        b = Matrix.from_dense(np.array([[0.0, 2.0], [0.0, 4.0]]))
        out = ewise_add(a, b)
        assert np.allclose(out.to_dense(), [[1.0, 2.0], [0.0, 7.0]])

    def test_add_custom_op(self):
        a = Matrix.from_dense(np.array([[2.0]]))
        b = Matrix.from_dense(np.array([[5.0]]))
        out = ewise_add(a, b, op=np.maximum)
        assert out.to_dense()[0, 0] == 5.0

    def test_mult_disjoint_patterns_empty(self):
        a = Matrix.from_dense(np.array([[1.0, 0.0], [0.0, 0.0]]))
        b = Matrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert ewise_mult(a, b).nvals == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            ewise_add(Matrix.empty(2, 2), Matrix.empty(3, 3))


class TestMask:
    def test_structural_mask(self):
        a = Matrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
        mask = Matrix.from_dense(np.array([[1.0, 0.0], [0.0, 1.0]]))
        kept = apply_mask(a, mask)
        assert np.allclose(kept.to_dense(), [[1.0, 0.0], [0.0, 4.0]])

    def test_complement_mask(self):
        a = Matrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
        mask = Matrix.from_dense(np.array([[1.0, 0.0], [0.0, 1.0]]))
        dropped = apply_mask(a, mask, complement=True)
        assert np.allclose(dropped.to_dense(), [[0.0, 2.0], [3.0, 0.0]])


class TestBfs:
    def test_path_levels(self):
        path = Matrix.from_dense(
            np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
        )
        assert bfs_levels(path, 0).tolist() == [0, 1, 2]

    def test_unreachable_marked(self):
        disconnected = Matrix.from_dense(
            np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        )
        assert bfs_levels(disconnected, 0).tolist() == [0, 1, -1]

    def test_matches_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        g = nx.gnp_random_graph(30, 0.12, seed=7, directed=True)
        u = np.array([e[0] for e in g.edges()], dtype=np.int64)
        v = np.array([e[1] for e in g.edges()], dtype=np.int64)
        a = Matrix.build(u, v, nrows=30, ncols=30)
        levels = bfs_levels(a, 0)
        expected = nx.single_source_shortest_path_length(g, 0)
        for node in range(30):
            assert levels[node] == expected.get(node, -1)

    def test_source_validation(self):
        a = Matrix.empty(3, 3)
        with pytest.raises(ValueError, match="source"):
            bfs_levels(a, 5)


class TestTriangles:
    def test_single_triangle(self):
        tri = Matrix.from_dense(np.array(
            [[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        ))
        assert triangle_count(tri) == 1

    def test_directed_edges_symmetrised(self):
        # One directed cycle 0->1->2->0 forms one undirected triangle.
        cyc = Matrix.from_dense(np.array(
            [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]]
        ))
        assert triangle_count(cyc) == 1

    def test_self_loops_ignored(self):
        loops = Matrix.from_dense(np.diag([1.0, 1.0, 1.0]))
        assert triangle_count(loops) == 0

    def test_matches_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        g = nx.gnp_random_graph(25, 0.25, seed=11, directed=True)
        u = np.array([e[0] for e in g.edges()], dtype=np.int64)
        v = np.array([e[1] for e in g.edges()], dtype=np.int64)
        a = Matrix.build(u, v, nrows=25, ncols=25)
        expected = sum(nx.triangles(g.to_undirected()).values()) // 3
        assert triangle_count(a) == expected


class TestComponents:
    def test_two_islands(self):
        a = Matrix.from_dense(np.array(
            [[0.0, 1.0, 0.0, 0.0],
             [0.0, 0.0, 0.0, 0.0],
             [0.0, 0.0, 0.0, 1.0],
             [0.0, 0.0, 0.0, 0.0]]
        ))
        labels = connected_components(a)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_matches_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        g = nx.gnp_random_graph(40, 0.05, seed=5, directed=True)
        u = np.array([e[0] for e in g.edges()], dtype=np.int64)
        v = np.array([e[1] for e in g.edges()], dtype=np.int64)
        a = Matrix.build(u, v, nrows=40, ncols=40) if len(u) else Matrix.empty(40, 40)
        labels = connected_components(a)
        expected = list(nx.weakly_connected_components(g))
        assert len(set(labels.tolist())) == len(expected)
        for component in expected:
            component_labels = {labels[x] for x in component}
            assert len(component_labels) == 1


class TestPagerankGrb:
    def test_matches_backend(self, rng, tmp_path):
        from repro.backends.registry import get_backend
        from repro.core.config import PipelineConfig
        from repro.edgeio.dataset import EdgeDataset

        u = rng.integers(0, 32, 200).astype(np.int64)
        v = rng.integers(0, 32, 200).astype(np.int64)
        ds = EdgeDataset.write(tmp_path / "d", u, v, num_vertices=32)
        config = PipelineConfig(scale=5, seed=2, iterations=10)
        backend = get_backend("graphblas")
        handle, _ = backend.kernel2(config, ds)
        expected, _ = backend.kernel3(config, handle)
        got, mass = pagerank_grb(
            handle.matrix, iterations=10,
            initial_rank=backend.initial_rank(config),
        )
        assert np.allclose(got, expected, atol=1e-12)
        assert mass == pytest.approx(got.sum())
