"""Unit tests for BTER, PPL, simple generators, degree analysis, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators.base import validate_edge_list
from repro.generators.bter import BTERParams, bter_edges
from repro.generators.degree import (
    degree_histogram,
    in_degrees,
    out_degrees,
    power_law_exponent,
)
from repro.generators.ppl import PPLParams, ppl_degree_sequence, ppl_edges
from repro.generators.registry import available_generators, get_generator
from repro.generators.simple import (
    bernoulli_edges,
    complete_graph_edges,
    erdos_renyi_edges,
    path_graph_edges,
    ring_graph_edges,
    self_loop_edges,
    star_graph_edges,
)


class TestPPL:
    def test_degree_sequence_length_and_order(self):
        seq = ppl_degree_sequence(500, exponent=1.8)
        assert len(seq) == 500
        assert np.all(np.diff(seq) <= 0)  # descending

    def test_histogram_is_power_law_shaped(self):
        seq = ppl_degree_sequence(2000, exponent=2.0, max_degree=50)
        values, counts = degree_histogram(seq[seq > 0])
        # Counts must be non-increasing in degree for a power law.
        assert counts[0] == counts.max()
        assert counts[-1] <= counts[0]

    def test_edges_realise_out_degrees_exactly(self):
        degrees = np.array([3, 2, 0, 1], dtype=np.int64)
        u, v = ppl_edges(4, degrees=degrees, seed=1)
        assert len(u) == 6
        assert np.array_equal(np.bincount(u, minlength=4), degrees)
        # In-degrees are a permutation of the same stub multiset.
        assert np.bincount(v, minlength=4).sum() == 6

    def test_rejects_negative_degrees(self):
        with pytest.raises(ValueError):
            ppl_edges(3, degrees=np.array([1, -1, 0]))

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            ppl_edges(3, degrees=np.array([1, 1]))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            PPLParams(exponent=0.9)
        with pytest.raises(ValueError):
            PPLParams(max_degree=0)


class TestBTER:
    def test_bounds_and_reproducibility(self):
        u1, v1 = bter_edges(128, seed=5)
        u2, v2 = bter_edges(128, seed=5)
        validate_edge_list(u1, v1, 128)
        assert np.array_equal(u1, u2) and np.array_equal(v1, v2)

    def test_edge_count_tracks_degree_budget(self):
        degrees = np.full(64, 4, dtype=np.int64)
        u, _ = bter_edges(64, degrees=degrees, seed=1)
        # Phase-1 sampling is stochastic; total should be within 2x.
        assert 0.5 * degrees.sum() <= len(u) <= 2.0 * degrees.sum()

    def test_community_structure_exists(self):
        # With rho=1 affinity blocks become cliques: the densest block
        # must be far denser than the global edge density.
        degrees = np.full(60, 5, dtype=np.int64)
        u, v = bter_edges(60, degrees=degrees, seed=2,
                          params=BTERParams(rho=1.0))
        dense = np.zeros((60, 60))
        np.add.at(dense, (u, v), 1.0)
        block = dense[:6, :6]  # first affinity block (degree 5 + 1)
        off_block = dense[:6, 6:]
        assert block.sum() > off_block.sum()

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            bter_edges(1)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            BTERParams(rho=0.0)
        with pytest.raises(ValueError):
            BTERParams(exponent=1.0)


class TestSimpleGenerators:
    def test_path(self):
        u, v = path_graph_edges(5)
        assert np.array_equal(u, [0, 1, 2, 3])
        assert np.array_equal(v, [1, 2, 3, 4])

    def test_path_single_vertex_is_empty(self):
        u, v = path_graph_edges(1)
        assert len(u) == 0

    def test_ring_closes(self):
        u, v = ring_graph_edges(4)
        assert np.array_equal(v, [1, 2, 3, 0])

    def test_star_all_point_to_hub(self):
        u, v = star_graph_edges(5)
        assert np.all(v == 0)
        assert np.array_equal(np.sort(u), [1, 2, 3, 4])

    def test_complete_counts(self):
        u, v = complete_graph_edges(4)
        assert len(u) == 12  # n*(n-1)
        u2, _ = complete_graph_edges(4, include_self_loops=True)
        assert len(u2) == 16

    def test_self_loops(self):
        u, v = self_loop_edges(3)
        assert np.array_equal(u, v)

    def test_erdos_renyi_multigraph(self):
        u, v = erdos_renyi_edges(10, 50, seed=1)
        assert len(u) == 50
        validate_edge_list(u, v, 10)

    def test_bernoulli_density(self):
        u, _ = bernoulli_edges(50, 0.5, seed=1)
        expected = 0.5 * 50 * 49
        assert 0.7 * expected < len(u) < 1.3 * expected

    def test_bernoulli_no_self_loops(self):
        u, v = bernoulli_edges(20, 1.0, seed=1)
        assert np.all(u != v)


class TestDegreeAnalysis:
    def test_in_out_degrees(self):
        u = np.array([0, 0, 1], dtype=np.int64)
        v = np.array([1, 1, 2], dtype=np.int64)
        assert np.array_equal(out_degrees(u, v, 3), [2, 1, 0])
        assert np.array_equal(in_degrees(u, v, 3), [0, 2, 1])

    def test_histogram(self):
        values, counts = degree_histogram(np.array([1, 1, 2, 5]))
        assert np.array_equal(values, [1, 2, 5])
        assert np.array_equal(counts, [2, 1, 1])

    def test_histogram_empty(self):
        values, counts = degree_histogram(np.array([]))
        assert len(values) == 0 and len(counts) == 0

    def test_power_law_exponent_recovers_alpha(self, rng):
        # Pareto(1.5) has density exponent alpha = 2.5; estimate in the
        # tail (d >= 10) where integer discretisation is negligible.
        degrees = np.floor(rng.pareto(1.5, size=200000) + 1).astype(int)
        alpha = power_law_exponent(degrees, d_min=10)
        assert 2.3 < alpha < 2.7

    def test_power_law_exponent_degenerate(self):
        assert np.isnan(power_law_exponent(np.array([1])))


class TestRegistry:
    def test_lists_all(self):
        names = set(available_generators())
        assert {"kronecker", "erdos-renyi", "bter", "ppl", "ring"} <= names

    @pytest.mark.parametrize("name", ["kronecker", "erdos-renyi", "bter", "ppl", "ring"])
    def test_each_generator_runs(self, name):
        fn = get_generator(name)
        u, v = fn(6, 4, seed=1)
        validate_edge_list(u, v, 64)
        assert len(u) > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            get_generator("nope")
