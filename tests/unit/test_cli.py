"""Unit tests for the repro-pipeline CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 12
        assert args.backend == "scipy"

    def test_sweep_csv_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--scales", "6,8", "--backends", "scipy,numpy"]
        )
        assert args.scales == [6, 8]
        assert args.backends == ["scipy", "numpy"]

    def test_bad_scales_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scales", "a,b"])

    def test_figures_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--id", "fig9"])

    def test_run_execution_choices(self):
        args = build_parser().parse_args(["run", "--execution", "streaming"])
        assert args.execution == "streaming"
        args = build_parser().parse_args(["run", "--execution", "async"])
        assert args.execution == "async"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--execution", "turbo"])

    def test_cache_subcommand_parsing(self):
        args = build_parser().parse_args(
            ["cache", "prune", "--cache-dir", "c", "--max-bytes", "500M"]
        )
        assert args.max_bytes == 500 * (1 << 20)
        args = build_parser().parse_args(
            ["cache", "prune", "--cache-dir", "c", "--max-bytes", "2g"]
        )
        assert args.max_bytes == 2 << 30
        args = build_parser().parse_args(
            ["cache", "rm", "abc123", "--cache-dir", "c", "--kind", "k2"]
        )
        assert args.key == "abc123" and args.kind == "k2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cache", "prune", "--cache-dir", "c", "--max-bytes", "lots"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "ls"])  # --cache-dir required

    def test_run_verify_and_validate_flags_are_independent(self):
        args = build_parser().parse_args(
            ["run", "--validate", "--no-validate", "--no-verify"]
        )
        assert args.validate and args.no_validate and args.no_verify
        defaults = build_parser().parse_args(["run"])
        assert not defaults.no_validate and not defaults.no_verify


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "backends:" in out and "kronecker" in out

    def test_tables_table2(self, capsys):
        assert main(["tables", "--id", "table2", "--scales", "16"]) == 0
        out = capsys.readouterr().out
        assert "65K" in out

    def test_tables_table1(self, capsys):
        assert main(["tables", "--id", "table1"]) == 0
        assert "graphblas" in capsys.readouterr().out

    def test_run_small(self, capsys):
        assert main(["run", "--scale", "6", "--backend", "numpy"]) == 0
        out = capsys.readouterr().out
        assert "k3-pagerank" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "--scale", "6", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"]["scale"] == 6
        assert len(doc["kernels"]) == 4

    def test_run_with_validation(self, capsys):
        code = main(["run", "--scale", "6", "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validation: PASS" in out

    def test_no_validate_skips_only_validation(self, capsys):
        # Contracts still run (and pass); the eigenvector check is off.
        code = main(["run", "--scale", "6", "--validate", "--no-validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validation:" not in out
        assert "k3-pagerank" in out

    def test_no_verify_skips_contracts_but_not_validation(self, capsys):
        code = main(["run", "--scale", "6", "--validate", "--no-verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validation: PASS" in out

    def test_run_streaming_execution(self, capsys):
        assert main(["run", "--scale", "6", "--execution", "streaming",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        k2 = [k for k in doc["kernels"] if k["kernel"] == "k2-filter"][0]
        assert k2["details"]["execution"] == "streaming"

    def test_run_parallel_execution(self, capsys):
        assert main(["run", "--scale", "6", "--execution", "parallel",
                     "--ranks", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        k3 = [k for k in doc["kernels"] if k["kernel"] == "k3-pagerank"][0]
        assert k3["details"]["traffic"]["total_bytes"] > 0

    def test_run_streaming_rejected_for_python_backend(self, capsys):
        code = main(["run", "--scale", "6", "--backend", "python",
                     "--execution", "streaming"])
        assert code == 2
        assert "streaming" in capsys.readouterr().err

    def test_run_async_execution(self, capsys):
        assert main(["run", "--scale", "6", "--execution", "async",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        k3 = next(k for k in doc["kernels"] if k["kernel"] == "k3-pagerank")
        assert k3["details"]["execution"] == "async"
        assert "overlap_saved_s" in k3["details"]
        assert doc["wall_seconds"] > 0.0

    def test_run_async_report_mentions_overlap(self, capsys):
        assert main(["run", "--scale", "6", "--execution", "async"]) == 0
        out = capsys.readouterr().out
        assert "async overlap:" in out
        assert "overlap saved" in out

    def test_run_async_process_lanes(self, capsys):
        assert main(["run", "--scale", "6", "--execution", "async",
                     "--async-lanes", "process", "--num-files", "2",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"]["async_lanes"] == "process"
        k3 = next(k for k in doc["kernels"] if k["kernel"] == "k3-pagerank")
        assert k3["details"]["codec_lane"] == "process"
        assert k3["details"]["lane_busy_seconds"]["process"] > 0.0

    def test_run_async_lanes_flag_overrides_scenario(self, capsys):
        assert main(["run", "--scenario", "async-overlap-proc",
                     "--scale", "6", "--async-lanes", "thread",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"]["async_lanes"] == "thread"

    def test_cache_ls_rm_prune_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "c")
        assert main(["run", "--scale", "6", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "k0" in out and "k1" in out and "k2" in out
        assert "3 entries" in out
        key = next(line.split("|")[2].strip() for line in out.splitlines()
                   if "| k2 " in line)
        assert main(["cache", "rm", key, "--cache-dir", cache,
                     "--kind", "k2"]) == 0
        assert "removed k2/" in capsys.readouterr().out
        assert main(["cache", "rm", "nonexistent", "--cache-dir", cache]) == 1
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", cache,
                     "--max-bytes", "0"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert main(["cache", "ls", "--cache-dir", cache]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_run_cache_dir_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["run", "--scale", "6", "--cache-dir", str(cache),
                     "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["run", "--scale", "6", "--cache-dir", str(cache),
                     "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        by_kernel = {k["kernel"]: k for k in second["kernels"]}
        assert by_kernel["k0-generate"]["details"]["artifact_cache"] == "hit"
        assert by_kernel["k1-sort"]["details"]["artifact_cache"] == "hit"
        # JSON consumers get an explicit gap, not cache-read "throughput".
        assert by_kernel["k0-generate"]["cached"] is True
        assert by_kernel["k0-generate"]["edges_per_second"] is None
        # The filtered matrix is also cached now (keyed on the K1
        # dataset), so repeats skip the K2 rebuild too.
        assert by_kernel["k2-filter"]["cached"] is True
        assert by_kernel["k2-filter"]["edges_per_second"] is None
        assert by_kernel["k3-pagerank"]["cached"] is False
        assert (first["rank_summary"]["argmax"]
                == second["rank_summary"]["argmax"])

    def test_run_report_marks_cache_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["run", "--scale", "6", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["run", "--scale", "6", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        # Cache reads are labelled and their speed is not presented as
        # generate/sort throughput.
        assert "k0-generate (cache hit)" in out
        assert "k1-sort (cache hit)" in out
        assert "k2-filter (cache hit)" in out
        assert "k3-pagerank (cache hit)" not in out

    def test_sweep_default_backends_with_streaming(self, capsys):
        # The default backend list includes serial-only backends; the
        # sweep must skip them rather than abort.
        assert main(["sweep", "--scales", "6",
                     "--execution", "streaming"]) == 0
        out = capsys.readouterr().out
        assert "scipy" in out and "numpy" in out

    def test_run_keeps_files_in_data_dir(self, tmp_path, capsys):
        assert main(["run", "--scale", "6", "--data-dir", str(tmp_path)]) == 0
        assert (tmp_path / "k0" / "manifest.json").exists()
        assert (tmp_path / "k1" / "manifest.json").exists()

    def test_validate_command(self, capsys):
        assert main(["validate", "--scale", "6", "--backend", "scipy"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_parallel_command(self, capsys):
        assert main(["parallel", "--scale", "7", "--ranks", "2",
                     "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "traffic" in out and "allreduce" in out

    def test_figures_command_small(self, capsys, tmp_path):
        out_file = tmp_path / "records.json"
        code = main([
            "figures", "--id", "fig6", "--scales", "6",
            "--backends", "scipy", "--output", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        assert "Figure 6" in capsys.readouterr().out

    def test_sweep_command_small(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.csv"
        code = main([
            "sweep", "--scales", "6", "--backends", "numpy",
            "--output", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()

    def test_unknown_backend_exits_2(self, capsys):
        assert main(["run", "--scale", "6", "--backend", "fortran"]) == 2
        assert "error" in capsys.readouterr().err

    def test_golden_save_and_check(self, tmp_path, capsys):
        golden_file = tmp_path / "golden.json"
        assert main(["golden", "--scale", "6", "--save", str(golden_file)]) == 0
        assert golden_file.exists()
        assert main(["golden", "--scale", "6", "--check", str(golden_file)]) == 0
        assert "matches" in capsys.readouterr().out

    def test_golden_check_detects_mismatch(self, tmp_path, capsys):
        golden_file = tmp_path / "golden.json"
        assert main(["golden", "--scale", "6", "--seed", "1",
                     "--save", str(golden_file)]) == 0
        code = main(["golden", "--scale", "6", "--seed", "2",
                     "--check", str(golden_file)])
        assert code == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_golden_prints_json_by_default(self, capsys):
        assert main(["golden", "--scale", "6"]) == 0
        out = capsys.readouterr().out
        assert '"k1_num_edges"' in out

    def test_report_command(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(["report", "--scales", "6", "--backends", "scipy",
                     "--output", str(out_file)])
        assert code == 0
        document = out_file.read_text()
        assert "Figure 7" in document and "Table II" in document

    def test_predict_command(self, capsys):
        code = main(["predict", "--calibration-scale", "6",
                     "--scales", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worst error factor" in out
        assert "k3-pagerank" in out


class TestScenarioAndSpecSurface:
    def test_run_scenario(self, capsys):
        assert main(["run", "--scenario", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "backend=numpy" in out
        assert "k3-pagerank" in out

    def test_run_scenario_with_explicit_override(self, capsys):
        assert main(["run", "--scenario", "smoke", "--seed", "9",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"]["seed"] == 9
        assert doc["config"]["backend"] == "numpy"  # scenario's choice

    def test_run_unknown_scenario_is_usage_error(self, capsys):
        assert main(["run", "--scenario", "warp-speed"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_info_lists_scenarios(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "scenarios:" in out and "paper-s18" in out

    def test_run_parallel_executor_mp_flag(self, capsys):
        assert main(["run", "--scale", "6", "--execution", "parallel",
                     "--ranks", "2", "--parallel-executor", "mp",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        k2 = next(k for k in doc["kernels"] if k["kernel"] == "k2-filter")
        assert k2["details"]["parallel_executor"] == "mp"

    def test_run_repeats_flag(self, tmp_path, capsys):
        assert main(["run", "--scale", "6", "--repeats", "2",
                     "--cache-dir", str(tmp_path / "c"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # The reported result is the last repeat: warm from the cache.
        by_kernel = {k["kernel"]: k for k in doc["kernels"]}
        assert by_kernel["k0-generate"]["details"]["artifact_cache"] == "hit"

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.port == 0 and args.workers == 2


class TestExitCodeDiscipline:
    def test_json_goes_to_stdout_even_on_validation_failure(self, capsys):
        # paper-body formula at tiny scale diverges from the principal
        # eigenvector, so full validation fails — the JSON payload must
        # still land on stdout with the diagnostic on stderr.
        code = main(["run", "--scale", "6", "--seed", "1",
                     "--iterations", "2", "--damping", "0.99",
                     "--formula", "paper-body", "--validate", "--json"])
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout is pure JSON
        if doc["validation"]["passed"]:
            pytest.skip("validation unexpectedly passed at this config")
        assert code == 1
        assert "validation failed" in captured.err

    def test_validation_failure_without_json_exits_1(self, capsys):
        code = main(["run", "--scale", "6", "--iterations", "2",
                     "--damping", "0.99", "--formula", "paper-body",
                     "--validate"])
        captured = capsys.readouterr()
        if "validation: FAIL" not in captured.out:
            pytest.skip("validation unexpectedly passed at this config")
        assert code == 1

    def test_scenario_override_equal_to_parser_default_still_wins(self):
        from repro.cli.commands import run_spec_from_args

        # cache-warm sets repeats=3; an explicit `--repeats 1` must
        # override even though 1 equals the parser default (presence on
        # the command line is what counts, not value inequality).
        argv = ["run", "--scenario", "cache-warm", "--repeats", "1"]
        args = build_parser().parse_args(argv)
        args._argv = argv
        assert run_spec_from_args(args).repeats == 1
        # Omitted flags keep the scenario's values.
        argv = ["run", "--scenario", "cache-warm"]
        args = build_parser().parse_args(argv)
        args._argv = argv
        spec = run_spec_from_args(args)
        assert spec.repeats == 3 and spec.scale == 10

    def test_scenario_cache_warm_without_cache_dir_warns(self, capsys):
        assert main(["run", "--scenario", "cache-warm", "--scale", "6"]) == 0
        err = capsys.readouterr().err
        assert "no --cache-dir" in err

    def test_scenario_no_verify_keeps_scenario_validation(self):
        from repro.cli.commands import run_spec_from_args
        from repro.cli.main import build_parser

        # --no-verify drops only the contracts: a scenario with full
        # validation degrades to validate-only, never silently to off.
        args = build_parser().parse_args(
            ["run", "--scenario", "validated", "--no-verify"]
        )
        assert run_spec_from_args(args).validation == "validate-only"
        args = build_parser().parse_args(
            ["run", "--scenario", "validated", "--no-validate"]
        )
        assert run_spec_from_args(args).validation == "contracts"

    def test_cache_rm_distinguishes_busy_from_absent(self, tmp_path, capsys):
        from repro.core.artifacts import ArtifactCache

        cache_dir = tmp_path / "c"
        assert main(["run", "--scale", "6", "--cache-dir",
                     str(cache_dir)]) == 0
        capsys.readouterr()
        cache = ArtifactCache(cache_dir)
        entry = next(e for e in cache.entries() if e.kind == "k0")
        lock = cache.entry_lock("k0", entry.key)
        lock.acquire(shared=True)
        try:
            assert main(["cache", "rm", entry.key, "--cache-dir",
                         str(cache_dir), "--kind", "k0"]) == 1
            assert "in use" in capsys.readouterr().err
        finally:
            lock.release()
        assert main(["cache", "rm", entry.key, "--cache-dir",
                     str(cache_dir), "--kind", "k0"]) == 0

    def test_capability_mismatch_stays_usage_error(self, capsys):
        assert main(["run", "--scale", "6", "--backend", "python",
                     "--execution", "streaming"]) == 2

    def test_sweep_progress_lines_go_to_stderr(self, capsys):
        assert main(["sweep", "--scales", "6", "--backends", "numpy"]) == 0
        captured = capsys.readouterr()
        assert "... backend=numpy" in captured.err
        assert "... backend=numpy" not in captured.out
        assert "k3-pagerank" in captured.out  # the table is the payload


class TestTraceFlag:
    def test_run_trace_writes_a_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["run", "--scale", "6", "--backend", "numpy",
                     "--execution", "async", "--trace",
                     str(trace_path)]) == 0
        err = capsys.readouterr().err
        assert "trace written to" in err
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "X"}
        for required in ("pipeline", "schedule", "stage:k3-pagerank"):
            assert required in names

    def test_trace_flag_validates_via_check_trace_cli(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        trace_path = tmp_path / "trace.json"
        assert main(["run", "--scale", "6", "--backend", "numpy",
                     "--execution", "async", "--trace",
                     str(trace_path)]) == 0
        repo = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, str(repo / "tools" / "check_trace.py"),
             str(trace_path), "--require",
             "pipeline,stage:k0-generate,stage:k3-pagerank,schedule"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout

    def test_trace_flag_composes_with_scenario(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["run", "--scenario", "smoke", "--trace",
                     str(trace_path)]) == 0
        assert trace_path.exists()

    def test_untraced_run_writes_nothing(self, tmp_path, capsys):
        assert main(["run", "--scale", "6", "--backend", "numpy"]) == 0
        assert "trace written" not in capsys.readouterr().err
