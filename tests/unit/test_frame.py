"""Unit tests for the mini columnar dataframe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frame import Frame, read_tsv_frame, write_tsv_frame


class TestConstruction:
    def test_basic(self):
        f = Frame({"a": [1, 2], "b": [3.0, 4.0]})
        assert f.num_rows == 2
        assert f.column_names == ["a", "b"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one column"):
            Frame({})

    def test_rejects_ragged(self):
        with pytest.raises(ValueError, match="length"):
            Frame({"a": [1], "b": [1, 2]})

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            Frame({"a": np.zeros((2, 2))})

    def test_column_returns_copy(self):
        f = Frame({"a": [1, 2]})
        col = f.column("a")
        col[0] = 99
        assert f.column("a")[0] == 1

    def test_missing_column_names_available(self):
        f = Frame({"a": [1]})
        with pytest.raises(KeyError, match="available"):
            f.column("z")


class TestRowOps:
    @pytest.fixture
    def f(self):
        return Frame({"u": [2, 0, 1, 0], "v": [10, 20, 30, 40]})

    def test_take(self, f):
        out = f.take(np.array([1, 3]))
        assert out.column("v").tolist() == [20, 40]

    def test_filter(self, f):
        out = f.filter(f.column("u") == 0)
        assert out.column("v").tolist() == [20, 40]

    def test_filter_length_guard(self, f):
        with pytest.raises(ValueError):
            f.filter(np.array([True]))

    def test_sort_single_key_stable(self, f):
        out = f.sort_values("u")
        assert out.column("u").tolist() == [0, 0, 1, 2]
        assert out.column("v").tolist() == [20, 40, 30, 10]

    def test_sort_multi_key(self):
        f = Frame({"u": [1, 0, 1, 0], "v": [5, 9, 2, 1]})
        out = f.sort_values(["u", "v"])
        assert out.column("u").tolist() == [0, 0, 1, 1]
        assert out.column("v").tolist() == [1, 9, 2, 5]

    def test_sort_requires_keys(self, f):
        with pytest.raises(ValueError):
            f.sort_values([])

    def test_assign_and_select(self, f):
        out = f.assign(w=f.column("u") * 2).select(["w"])
        assert out.column_names == ["w"]
        assert out.column("w").tolist() == [4, 0, 2, 0]

    def test_concat(self, f):
        doubled = f.concat(f)
        assert doubled.num_rows == 8

    def test_concat_column_mismatch(self, f):
        with pytest.raises(ValueError, match="column mismatch"):
            f.concat(Frame({"x": [1]}))

    def test_head(self, f):
        assert f.head(2).num_rows == 2
        assert f.head(100).num_rows == 4


class TestGroupBy:
    def test_groupby_size(self):
        f = Frame({"k": [3, 1, 3, 3]})
        out = f.groupby_size("k")
        assert out.column("k").tolist() == [1, 3]
        assert out.column("size").tolist() == [1, 3]

    def test_groupby_sum(self):
        f = Frame({"k": [1, 2, 1], "x": [1.0, 10.0, 2.0]})
        out = f.groupby_sum("k", "x")
        assert out.column("x_sum").tolist() == [3.0, 10.0]

    def test_groupby_apply_scalar(self):
        f = Frame({"k": [0, 0, 1], "x": [1.0, 3.0, 5.0]})
        out = f.groupby_apply_scalar("k", lambda g: float(g.column("x").max()))
        assert out.column("result").tolist() == [3.0, 5.0]


class TestMerge:
    def test_inner(self):
        left = Frame({"k": [1, 2, 3], "a": [10, 20, 30]})
        right = Frame({"k": [2, 3, 4], "b": [200, 300, 400]})
        out = left.merge(right, on="k")
        assert out.column("k").tolist() == [2, 3]
        assert out.column("b").tolist() == [200, 300]

    def test_left_fills_zero(self):
        left = Frame({"k": [1, 2], "a": [10, 20]})
        right = Frame({"k": [2], "b": [200]})
        out = left.merge(right, on="k", how="left")
        assert out.column("b").tolist() == [0, 200]

    def test_left_with_empty_right(self):
        left = Frame({"k": [1], "a": [10]})
        right = Frame({"k": np.array([], dtype=np.int64),
                       "b": np.array([], dtype=np.int64)})
        out = left.merge(right, on="k", how="left")
        assert out.column("b").tolist() == [0]

    def test_invalid_how(self):
        f = Frame({"k": [1]})
        with pytest.raises(ValueError):
            f.merge(f, on="k", how="outer")


class TestEquality:
    def test_equals(self):
        a = Frame({"x": [1, 2]})
        assert a.equals(Frame({"x": [1, 2]}))
        assert not a.equals(Frame({"x": [1, 3]}))
        assert not a.equals(Frame({"y": [1, 2]}))


class TestTsvIO:
    def test_round_trip_headerless(self, tmp_path):
        f = Frame({"u": np.array([1, 2], dtype=np.int64),
                   "v": np.array([3, 4], dtype=np.int64)})
        write_tsv_frame(f, tmp_path / "t.tsv")
        out = read_tsv_frame(tmp_path / "t.tsv", names=["u", "v"])
        assert f.equals(out)

    def test_round_trip_with_header_and_floats(self, tmp_path):
        f = Frame({"name_len": np.array([3, 4], dtype=np.int64),
                   "score": np.array([0.5, 1.25])})
        write_tsv_frame(f, tmp_path / "t.tsv", header=True)
        out = read_tsv_frame(
            tmp_path / "t.tsv", header=True,
            dtypes=[np.dtype(np.int64), np.dtype(np.float64)],
        )
        assert out.column("score").tolist() == [0.5, 1.25]

    def test_matches_edge_file_format(self, tmp_path):
        from repro.edgeio.format import decode_edges

        f = Frame({"u": np.array([0, 5], dtype=np.int64),
                   "v": np.array([1, 2], dtype=np.int64)})
        write_tsv_frame(f, tmp_path / "edges.tsv")
        u, v = decode_edges((tmp_path / "edges.tsv").read_bytes())
        assert u.tolist() == [0, 5] and v.tolist() == [1, 2]

    def test_ragged_rejected(self, tmp_path):
        (tmp_path / "bad.tsv").write_text("1\t2\n3\n")
        with pytest.raises(ValueError, match="ragged"):
            read_tsv_frame(tmp_path / "bad.tsv", names=["a", "b"])

    def test_bad_dtype_rejected(self, tmp_path):
        (tmp_path / "bad.tsv").write_text("1\tx\n")
        with pytest.raises(ValueError, match="convert"):
            read_tsv_frame(tmp_path / "bad.tsv", names=["a", "b"])

    def test_names_required_without_header(self, tmp_path):
        (tmp_path / "t.tsv").write_text("1\t2\n")
        with pytest.raises(ValueError, match="names"):
            read_tsv_frame(tmp_path / "t.tsv")

    def test_empty_file_with_names(self, tmp_path):
        (tmp_path / "t.tsv").write_text("")
        out = read_tsv_frame(tmp_path / "t.tsv", names=["a"])
        assert out.num_rows == 0
