"""Unit tests for the multiprocessing communicator (star collectives)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.mp import run_rank_programs_mp


# Rank programs must be module-level (picklable) for multiprocessing.

def _allreduce_program(comm):
    return comm.allreduce(np.array([float(comm.rank + 1)]))


def _bcast_program(comm):
    payload = {"origin": comm.rank} if comm.rank == 1 else None
    return comm.bcast(payload, root=1)


def _allgather_program(comm):
    return comm.allgather(comm.rank * 3)


def _alltoall_program(comm):
    payloads = [f"{comm.rank}->{dest}" for dest in range(comm.size)]
    return comm.alltoall(payloads)


def _send_recv_program(comm):
    if comm.rank == 0:
        comm.send(1, np.arange(4))
        return None
    return int(comm.recv(0).sum())


def _barrier_program(comm):
    comm.barrier()
    return comm.rank


def _failing_program(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    comm.barrier()  # would deadlock without failure marshalling
    return comm.rank


class TestMpCollectives:
    def test_allreduce_sum(self):
        results = run_rank_programs_mp(_allreduce_program, 3)
        assert all(r[0] == 6.0 for r in results)

    def test_bcast_nonzero_root(self):
        results = run_rank_programs_mp(_bcast_program, 3)
        assert results == [{"origin": 1}] * 3

    def test_allgather(self):
        results = run_rank_programs_mp(_allgather_program, 3)
        assert results == [[0, 3, 6]] * 3

    def test_alltoall(self):
        results = run_rank_programs_mp(_alltoall_program, 3)
        assert results[2] == ["0->2", "1->2", "2->2"]

    def test_send_recv(self):
        results = run_rank_programs_mp(_send_recv_program, 2)
        assert results[1] == 6

    def test_barrier_completes(self):
        assert run_rank_programs_mp(_barrier_program, 4) == [0, 1, 2, 3]

    def test_single_rank(self):
        results = run_rank_programs_mp(_allreduce_program, 1)
        assert results[0][0] == 1.0

    def test_rank_failure_reported(self):
        with pytest.raises(RuntimeError, match="rank 1"):
            run_rank_programs_mp(_failing_program, 2, timeout=30.0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            run_rank_programs_mp(_barrier_program, 0)
