"""Unit tests for the multiprocessing communicator (star collectives)
and the sanity of per-rank phase clocks under real processes."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.parallel.mp import run_rank_programs_mp


# Rank programs must be module-level (picklable) for multiprocessing.

def _allreduce_program(comm):
    return comm.allreduce(np.array([float(comm.rank + 1)]))


def _bcast_program(comm):
    payload = {"origin": comm.rank} if comm.rank == 1 else None
    return comm.bcast(payload, root=1)


def _allgather_program(comm):
    return comm.allgather(comm.rank * 3)


def _alltoall_program(comm):
    payloads = [f"{comm.rank}->{dest}" for dest in range(comm.size)]
    return comm.alltoall(payloads)


def _send_recv_program(comm):
    if comm.rank == 0:
        comm.send(1, np.arange(4))
        return None
    return int(comm.recv(0).sum())


def _barrier_program(comm):
    comm.barrier()
    return comm.rank


def _failing_program(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    comm.barrier()  # would deadlock without failure marshalling
    return comm.rank


class TestMpCollectives:
    def test_allreduce_sum(self):
        results = run_rank_programs_mp(_allreduce_program, 3)
        assert all(r[0] == 6.0 for r in results)

    def test_bcast_nonzero_root(self):
        results = run_rank_programs_mp(_bcast_program, 3)
        assert results == [{"origin": 1}] * 3

    def test_allgather(self):
        results = run_rank_programs_mp(_allgather_program, 3)
        assert results == [[0, 3, 6]] * 3

    def test_alltoall(self):
        results = run_rank_programs_mp(_alltoall_program, 3)
        assert results[2] == ["0->2", "1->2", "2->2"]

    def test_send_recv(self):
        results = run_rank_programs_mp(_send_recv_program, 2)
        assert results[1] == 6

    def test_barrier_completes(self):
        assert run_rank_programs_mp(_barrier_program, 4) == [0, 1, 2, 3]

    def test_single_rank(self):
        results = run_rank_programs_mp(_allreduce_program, 1)
        assert results[0][0] == 1.0

    def test_rank_failure_reported(self):
        with pytest.raises(RuntimeError, match="rank 1"):
            run_rank_programs_mp(_failing_program, 2, timeout=30.0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            run_rank_programs_mp(_barrier_program, 0)


def _skewed_clock_program(comm):
    """Phase clocks under deliberate per-rank startup skew.

    Each rank sleeps ``0.1 * rank`` *before* starting its clocks —
    emulating multiprocessing's uneven process spin-up — then measures
    two phases separated by collectives, the same structure as the
    driver's fused exchange→K2→K3 program.
    """
    time.sleep(0.1 * comm.rank)
    t0 = time.perf_counter()
    comm.barrier()  # phase 1 ends at a synchronisation point
    t1 = time.perf_counter()
    comm.allreduce(np.zeros(2))
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1


class TestMpPhaseClockSanity:
    """The ROADMAP's 'parallel timing under the mp executor' pass.

    The driver splits the fused per-rank wall-clock into kernel phases
    and aggregates max-over-ranks; these tests pin the properties that
    make that split trustworthy for real processes: clocks are monotone
    (phases non-negative and finite) and startup skew is absorbed at
    the first synchronisation point instead of leaking into later
    phases.
    """

    def test_pipeline_phase_clocks_monotone_and_finite(self):
        from repro.generators.kronecker import kronecker_edges
        from repro.parallel.driver import _rank_program

        u, v = kronecker_edges(7, 4, seed=3)
        n = 128
        initial = np.full(n, 1.0 / n)
        outputs = run_rank_programs_mp(
            _rank_program, 2, u, v, n, initial, 0.85, 4, "appendix",
            timeout=120.0,
        )
        for _, _, _, k2_seconds, k3_seconds in outputs:
            assert np.isfinite(k2_seconds) and np.isfinite(k3_seconds)
            assert k2_seconds >= 0.0
            assert k3_seconds >= 0.0

    def test_max_over_ranks_bounds_every_rank(self):
        from repro.generators.kronecker import kronecker_edges
        from repro.parallel.driver import run_parallel_pipeline

        u, v = kronecker_edges(7, 4, seed=5)
        result = run_parallel_pipeline(u, v, 128, num_ranks=2, iterations=3,
                                       executor="mp")
        assert result.kernel2_seconds >= 0.0
        assert result.kernel3_seconds >= 0.0
        assert np.isfinite(result.kernel2_seconds)
        assert np.isfinite(result.kernel3_seconds)
        # The rank vector still matches the simulated executor's.
        sim = run_parallel_pipeline(u, v, 128, num_ranks=2, iterations=3,
                                    executor="sim")
        np.testing.assert_allclose(result.rank_vector, sim.rank_vector,
                                   rtol=1e-12, atol=1e-15)

    def test_startup_skew_absorbed_at_first_sync(self):
        size = 3
        outputs = run_rank_programs_mp(_skewed_clock_program, size,
                                       timeout=120.0)
        phase1 = [out[0] for out in outputs]
        phase2 = [out[1] for out in outputs]
        # Clocks start after each rank's own (skewed) startup, so no
        # phase can be negative however uneven the spin-up.
        assert all(p >= 0.0 for p in phase1 + phase2)
        # The slowest rank (largest skew) reaches the barrier last and
        # waits on no one: max-over-ranks phase 1 reflects barrier wait,
        # bounded by the total injected skew plus scheduling slack.
        assert max(phase1) < 0.1 * (size - 1) + 2.0
        # Once synchronised, startup skew must not leak into the next
        # phase: every rank's phase 2 is collective-only time.
        assert max(phase2) < 2.0


class TestMpConfigKnob:
    """`PipelineConfig.parallel_executor` routes the parallel strategy
    through the real multiprocessing communicator."""

    def test_config_validates_executor_name(self):
        from repro.core.config import PipelineConfig

        with pytest.raises(ValueError, match="parallel_executor"):
            PipelineConfig(scale=6, parallel_executor="gpu")

    def test_mp_execution_matches_sim_bit_for_bit(self):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import run_pipeline

        base = dict(scale=6, seed=3, execution="parallel",
                    parallel_ranks=2, iterations=3)
        sim = run_pipeline(PipelineConfig(parallel_executor="sim", **base))
        mp_run = run_pipeline(PipelineConfig(parallel_executor="mp", **base))
        np.testing.assert_allclose(mp_run.rank, sim.rank,
                                   rtol=1e-12, atol=1e-15)
        k2 = [k for k in mp_run.kernels if k.kernel.value == "k2-filter"][0]
        assert k2.details["parallel_executor"] == "mp"
        # mp ranks keep their own traffic logs; no aggregated summary.
        k3 = [k for k in mp_run.kernels if k.kernel.value == "k3-pagerank"][0]
        assert k3.details["traffic"] == {}

    def test_runspec_carries_the_knob(self):
        from repro.api import RunSpec

        spec = RunSpec(scale=6, execution="parallel",
                       parallel_executor="mp")
        assert spec.to_config().parallel_executor == "mp"
