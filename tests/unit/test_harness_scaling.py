"""Unit tests for the scaling-study harness."""

from __future__ import annotations

import pytest

from repro.core.config import KernelName
from repro.harness.scaling import (
    render_size_scaling,
    render_strong_scaling,
    size_scaling,
    strong_scaling,
)


class TestSizeScaling:
    @pytest.fixture(scope="class")
    def study(self):
        return size_scaling([6, 7], backend="numpy", seed=2)

    def test_points_ascending(self, study):
        assert [p.scale for p in study.points] == [6, 7]
        assert study.points[1].num_edges == 2 * study.points[0].num_edges

    def test_slope_finite(self, study):
        assert abs(study.slope) < 10.0  # any sane fit

    def test_kernel_selection(self):
        study = size_scaling([6], backend="scipy",
                             kernel=KernelName.K1_SORT, seed=2)
        assert study.kernel is KernelName.K1_SORT
        assert len(study.points) == 1

    def test_requires_scales(self):
        with pytest.raises(ValueError):
            size_scaling([])

    def test_render(self, study):
        text = render_size_scaling(study)
        assert "log-log slope" in text
        assert "numpy" in text


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def study(self):
        return strong_scaling([2, 4], scale=8, iterations=4, seed=2)

    def test_baseline_included(self, study):
        assert [p.ranks for p in study.points] == [1, 2, 4]

    def test_baseline_speedup_one(self, study):
        assert study.points[0].speedup == pytest.approx(1.0)
        assert study.points[0].efficiency == pytest.approx(1.0)

    def test_allreduce_grows_with_ranks(self, study):
        traffic = {p.ranks: p.allreduce_bytes for p in study.points}
        assert traffic[1] == 0
        assert traffic[4] > traffic[2] > 0

    def test_load_balance_recorded(self, study):
        assert len(study.local_nnz[4]) == 4
        assert sum(study.local_nnz[4]) == sum(study.local_nnz[2])

    def test_render(self, study):
        text = render_strong_scaling(study)
        assert "allreduce bytes" in text
        assert "strong scaling" in text
