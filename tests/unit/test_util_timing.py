"""Unit tests for repro._util.timing."""

from __future__ import annotations

import time

import pytest

from repro._util.timing import StopWatch, Timings, timed


class TestStopWatch:
    def test_starts_stopped(self):
        watch = StopWatch()
        assert not watch.running
        assert watch.elapsed == 0.0

    def test_measures_elapsed_time(self):
        watch = StopWatch().start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.009
        assert not watch.running

    def test_accumulates_across_restarts(self):
        watch = StopWatch()
        watch.start()
        time.sleep(0.005)
        first = watch.stop()
        watch.start()
        time.sleep(0.005)
        total = watch.stop()
        assert total > first

    def test_start_is_idempotent_while_running(self):
        watch = StopWatch().start()
        watch.start()  # should not reset the start point
        time.sleep(0.005)
        assert watch.stop() >= 0.004

    def test_reset_zeroes_state(self):
        watch = StopWatch().start()
        time.sleep(0.002)
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_elapsed_readable_while_running(self):
        watch = StopWatch().start()
        time.sleep(0.002)
        live = watch.elapsed
        assert live > 0.0
        assert watch.running
        watch.stop()

    def test_stop_when_not_running_returns_accumulated(self):
        watch = StopWatch()
        assert watch.stop() == 0.0


class TestTimings:
    def test_add_and_total(self):
        timings = Timings()
        timings.add("read", 1.0)
        timings.add("write", 2.0)
        timings.add("read", 0.5)
        assert timings.entries["read"] == pytest.approx(1.5)
        assert timings.total == pytest.approx(3.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative duration"):
            Timings().add("x", -1.0)

    def test_measure_context_manager(self):
        timings = Timings()
        with timings.measure("block"):
            time.sleep(0.005)
        assert timings.entries["block"] >= 0.004

    def test_measure_records_on_exception(self):
        timings = Timings()
        with pytest.raises(RuntimeError):
            with timings.measure("failing"):
                raise RuntimeError("boom")
        assert "failing" in timings.entries

    def test_merged_with(self):
        a = Timings({"x": 1.0})
        b = Timings({"x": 2.0, "y": 3.0})
        merged = a.merged_with(b)
        assert merged.entries == {"x": 3.0, "y": 3.0}
        # Originals untouched.
        assert a.entries == {"x": 1.0}

    def test_as_dict_is_a_copy(self):
        timings = Timings({"x": 1.0})
        copy = timings.as_dict()
        copy["x"] = 99.0
        assert timings.entries["x"] == 1.0


def test_timed_context_manager():
    with timed() as watch:
        time.sleep(0.005)
    assert watch.elapsed >= 0.004
    assert not watch.running
