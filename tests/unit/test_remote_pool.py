"""RemoteWorkerPool + WorkerAgent: parity, partitions, no double-completion.

The agents here run as *threads* against an in-process pool listener —
the TCP stack is real, only the process boundary is elided (the
integration suite and CI's remote serve leg cover real agent
processes).  Short heartbeat timeouts keep the partition scenarios
fast and deterministic.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.api import RunSpec
from repro.service.agent import WorkerAgent
from repro.service.pool import RemoteJobError, WorkerCrashError
from repro.service.remote import RemoteWorkerPool

from tests.unit.test_worker_pool import SPEC, _comparable


def start_agent(pool, **kwargs):
    """A thread-hosted agent dialed at the pool's listener."""
    host, port = pool.address
    kwargs.setdefault("quiet", True)
    kwargs.setdefault("reconnect_delay", 0.1)
    agent = WorkerAgent(host, port, **kwargs)
    thread = threading.Thread(target=agent.run, daemon=True)
    thread.start()
    return agent, thread


def wait_connected(pool, count, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pool.stats()["workers_connected"] >= count:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"expected {count} connected workers, have "
        f"{pool.stats()['workers_connected']}"
    )


class TestParity:
    def test_remote_payload_bit_identical_to_thread(self):
        """The acceptance bar for the transport: a spec shipped over
        TCP returns the same result document (rank digest, records
        modulo timing) as in-process execution."""
        from repro.service.pool import ThreadWorkerPool

        pool = RemoteWorkerPool(1, heartbeat_timeout=10.0)
        agent, thread = start_agent(pool, worker_id="parity-1")
        try:
            via_remote, outcome = pool.run_spec(SPEC.to_dict(), None)
            assert outcome is None  # the rank vector stays in the agent
            via_thread, _ = ThreadWorkerPool(1).run_spec(SPEC.to_dict(), None)
            assert _comparable(via_remote) == _comparable(via_thread)
            # Dispatch provenance rides in the payload for /healthz and
            # trace grafting.
            assert via_remote["remote"]["worker_id"] == "parity-1"
            assert via_remote["remote"]["transport"] == "tcp"
        finally:
            pool.shutdown()
            thread.join(timeout=5)

    def test_job_error_carries_original_type_name(self):
        pool = RemoteWorkerPool(1, heartbeat_timeout=10.0)
        agent, thread = start_agent(pool)
        bad = RunSpec(scale=6, backend="graphblas", execution="parallel")
        try:
            with pytest.raises(RemoteJobError) as excinfo:
                pool.run_spec(bad.to_dict(), None)
            assert excinfo.value.error_type == "ExecutorCapabilityError"
            # The session survives a job failure: the agent is reusable.
            payload, _ = pool.run_spec(SPEC.to_dict(), None)
            assert payload["rank_sha256"]
        finally:
            pool.shutdown()
            thread.join(timeout=5)

    def test_duplicate_worker_ids_are_disambiguated(self):
        pool = RemoteWorkerPool(2, heartbeat_timeout=10.0)
        _, t1 = start_agent(pool, worker_id="twin")
        wait_connected(pool, 1)
        _, t2 = start_agent(pool, worker_id="twin")
        wait_connected(pool, 2)
        try:
            names = {row["worker"] for row in pool.workers_view()}
            assert names == {"twin", "twin~2"}
        finally:
            pool.shutdown()
            t1.join(timeout=5)
            t2.join(timeout=5)


class TestPartitions:
    def test_worker_killed_mid_job_fails_with_crash_error(self):
        """Socket death mid-job = WorkerCrashError (the requeue
        currency), and a reconnecting agent resumes service."""
        pool = RemoteWorkerPool(1, heartbeat_timeout=10.0)
        agent, thread = start_agent(pool, worker_id="victim",
                                    job_delay=30.0, max_reconnects=0)
        wait_connected(pool, 1)
        try:
            started = threading.Event()
            failure = []

            def dispatch():
                started.set()
                try:
                    pool.run_spec(SPEC.to_dict(), None, job_id="job-k")
                except WorkerCrashError as exc:
                    failure.append(exc)

            runner = threading.Thread(target=dispatch, daemon=True)
            runner.start()
            started.wait()
            # Wait until the job is actually in flight on the worker.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if any(r["job_id"] == "job-k" for r in pool.workers_view()):
                    break
                time.sleep(0.02)
            agent.stop()  # slam the socket shut mid-job (SIGKILL stand-in)
            runner.join(timeout=10)
            assert failure, "dispatch did not fail on worker death"
            assert "lost mid-job" in str(failure[0])
            assert pool.stats()["workers_crashed"] == 1
            # A fresh agent (a reconnect is a fresh registration) takes
            # the next dispatch.
            _, t2 = start_agent(pool, worker_id="replacement")
            payload, _ = pool.run_spec(SPEC.to_dict(), None)
            assert payload["remote"]["worker_id"] == "replacement"
        finally:
            pool.shutdown()
            thread.join(timeout=5)

    def test_heartbeat_timeout_loses_slow_worker_without_double_completion(self):
        """A worker that is alive but not beating is declared lost; its
        job requeues, and the result it eventually produces is dropped
        (counted), never double-completed."""
        # Agent heartbeats every 60s against a 0.5s deadline: guaranteed
        # to miss while remaining fully alive and busy.
        pool = RemoteWorkerPool(1, heartbeat_timeout=0.5)
        agent, thread = start_agent(
            pool, worker_id="slow", heartbeat_interval=60.0,
            job_delay=1.5, max_reconnects=0,
        )
        wait_connected(pool, 1)
        try:
            with pytest.raises(WorkerCrashError, match="heartbeat timeout"):
                pool.run_spec(SPEC.to_dict(), None, job_id="job-slow")
            # The agent is still computing; give it time to finish and
            # try to deliver into the closed channel.
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if agent.jobs_completed or agent.jobs_failed:
                    break
                time.sleep(0.05)
            stats = pool.stats()
            assert stats["workers_crashed"] == 1
            # The late result found no channel (socket closed at loss) —
            # either way results_dropped stays consistent with exactly
            # zero settled dispatches.
            assert stats["results_dropped"] == 0
        finally:
            pool.shutdown()
            thread.join(timeout=5)

    def test_torn_frame_loses_the_worker_not_the_pool(self):
        """A connection spewing garbage is cut; registered workers and
        later registrations are unaffected."""
        pool = RemoteWorkerPool(2, heartbeat_timeout=10.0)
        _, thread = start_agent(pool, worker_id="healthy")
        wait_connected(pool, 1)
        try:
            # A torn peer: registers properly, then violates framing.
            raw = socket.create_connection(pool.address, timeout=5)
            from repro.service.framing import FrameChannel

            torn = FrameChannel(raw)
            torn.send({"type": "register", "worker_id": "torn", "pid": 0})
            assert torn.recv()["type"] == "registered"
            wait_connected(pool, 2)
            raw.sendall(struct.pack("!I", 50) + b"half a frame")
            raw.close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if pool.stats()["workers_connected"] == 1:
                    break
                time.sleep(0.02)
            assert pool.stats()["workers_connected"] == 1
            assert pool.stats()["workers_crashed"] == 1
            payload, _ = pool.run_spec(SPEC.to_dict(), None)
            assert payload["remote"]["worker_id"] == "healthy"
        finally:
            pool.shutdown()
            thread.join(timeout=5)

    def test_garbage_connection_rejected_at_handshake(self):
        pool = RemoteWorkerPool(1, heartbeat_timeout=10.0)
        try:
            raw = socket.create_connection(pool.address, timeout=5)
            raw.sendall(b"GET / HTTP/1.1\r\n\r\n")  # a confused client
            raw.close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if pool.stats()["registrations_rejected"] == 1:
                    break
                time.sleep(0.02)
            assert pool.stats()["registrations_rejected"] == 1
            assert pool.stats()["workers_connected"] == 0
        finally:
            pool.shutdown()

    def test_no_workers_times_out_with_guidance(self):
        pool = RemoteWorkerPool(1, heartbeat_timeout=10.0,
                                register_timeout=0.2)
        try:
            with pytest.raises(WorkerCrashError, match="no remote worker"):
                pool.run_spec(SPEC.to_dict(), None)
        finally:
            pool.shutdown()


class TestLifecycle:
    def test_shutdown_frame_exits_agent_cleanly(self):
        pool = RemoteWorkerPool(1, heartbeat_timeout=10.0)
        host, port = pool.address
        agent = WorkerAgent(host, port, worker_id="clean", quiet=True)
        exit_code = []
        thread = threading.Thread(
            target=lambda: exit_code.append(agent.run()), daemon=True
        )
        thread.start()
        wait_connected(pool, 1)
        pool.shutdown()
        thread.join(timeout=10)
        assert exit_code == [0]  # shutdown frame, not a torn connection

    def test_reconnect_after_service_restart(self):
        """An agent outlives the pool: when a new pool binds, the agent
        re-registers and serves again (the cross-restart path)."""
        pool = RemoteWorkerPool(1, heartbeat_timeout=10.0)
        host, port = pool.address
        agent, thread = start_agent(pool, worker_id="phoenix")
        wait_connected(pool, 1)
        pool.terminate()  # hard stop: no shutdown frame
        # Rebind on the same port so the agent's redial finds us.
        deadline = time.monotonic() + 10
        pool2 = None
        while time.monotonic() < deadline:
            try:
                pool2 = RemoteWorkerPool(
                    1, host=host, port=port, heartbeat_timeout=10.0
                )
                break
            except OSError:
                time.sleep(0.1)
        assert pool2 is not None, "could not rebind the worker port"
        try:
            wait_connected(pool2, 1)
            payload, _ = pool2.run_spec(SPEC.to_dict(), None)
            assert payload["remote"]["worker_id"] == "phoenix"
        finally:
            pool2.shutdown()
            thread.join(timeout=5)
