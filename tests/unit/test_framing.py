"""Length-prefixed JSON framing: round trips and torn-wire behaviour."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.service.framing import MAX_FRAME_BYTES, FrameChannel, FrameError


def _pair():
    """A connected socket pair wrapped as two FrameChannels."""
    a, b = socket.socketpair()
    return FrameChannel(a), FrameChannel(b)


class TestRoundTrip:
    def test_doc_survives_the_wire(self):
        left, right = _pair()
        try:
            doc = {"type": "run", "seq": 7, "spec": {"scale": 12},
                   "unicode": "π ≈ 3.14159", "nested": [1, {"a": None}]}
            left.send(doc)
            assert right.recv() == doc
        finally:
            left.close()
            right.close()

    def test_many_frames_in_order(self):
        left, right = _pair()
        try:
            for seq in range(50):
                left.send({"seq": seq})
            for seq in range(50):
                assert right.recv() == {"seq": seq}
        finally:
            left.close()
            right.close()

    def test_concurrent_senders_never_interleave(self):
        """send() is locked: frames from racing threads stay whole."""
        left, right = _pair()
        try:
            def blast(tag):
                for index in range(25):
                    left.send({"tag": tag, "index": index, "pad": "x" * 512})

            threads = [
                threading.Thread(target=blast, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            docs = [right.recv() for _ in range(100)]
            for thread in threads:
                thread.join()
            assert all(isinstance(d, dict) and "tag" in d for d in docs)
        finally:
            left.close()
            right.close()


class TestEdges:
    def test_clean_eof_is_none(self):
        left, right = _pair()
        left.send({"last": True})
        left.close()
        assert right.recv() == {"last": True}
        assert right.recv() is None  # EOF exactly at a frame boundary
        right.close()

    def test_torn_frame_is_an_error(self):
        """EOF mid-frame (a SIGKILLed peer) must not look like a clean
        close — the pool uses the distinction in its lost-reason."""
        a, b = socket.socketpair()
        right = FrameChannel(b)
        a.sendall(struct.pack("!I", 100) + b'{"half":')  # promises 100 bytes
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            right.recv()
        right.close()

    def test_oversize_length_prefix_rejected(self):
        a, b = socket.socketpair()
        right = FrameChannel(b)
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError, match="exceeds"):
            right.recv()
        a.close()
        right.close()

    def test_garbage_payload_rejected(self):
        a, b = socket.socketpair()
        right = FrameChannel(b)
        body = b"\xff\x00 not json"
        a.sendall(struct.pack("!I", len(body)) + body)
        with pytest.raises(FrameError):
            right.recv()
        a.close()
        right.close()

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        right = FrameChannel(b)
        body = b"[1, 2, 3]"  # valid JSON, but the protocol speaks objects
        a.sendall(struct.pack("!I", len(body)) + body)
        with pytest.raises(FrameError, match="object"):
            right.recv()
        a.close()
        right.close()

    def test_oversize_send_refused_locally(self):
        left, right = _pair()
        try:
            small = FrameChannel(left.sock, max_frame=64)
            with pytest.raises(FrameError, match="refusing to send"):
                small.send({"pad": "x" * 256})
        finally:
            left.close()
            right.close()
