"""Scenario registry: resolution, overrides, built-in catalogue."""

from __future__ import annotations

import pytest

from repro.api.scenarios import (
    BUILTIN_SCENARIOS,
    PAPER_SCALES,
    ScenarioRegistry,
    default_registry,
    get_scenario,
    scenario_names,
)
from repro.api.spec import RunSpec


class TestRegistry:
    def test_register_and_resolve(self):
        registry = ScenarioRegistry()
        registry.register("tiny", "scale-5 numpy probe",
                          scale=5, backend="numpy")
        spec = registry.resolve("tiny")
        assert spec == RunSpec(scale=5, backend="numpy")

    def test_overrides_win(self):
        registry = ScenarioRegistry()
        registry.register("tiny", "d", scale=5, backend="numpy")
        assert registry.resolve("tiny", seed=42, scale=6).seed == 42
        assert registry.resolve("tiny", scale=6).scale == 6

    def test_duplicate_name_rejected(self):
        registry = ScenarioRegistry()
        registry.register("tiny", "d", scale=5)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("tiny", "again", scale=6)

    def test_unrunnable_scenario_rejected_at_registration(self):
        registry = ScenarioRegistry()
        with pytest.raises(ValueError):
            registry.register("broken", "d", scale=5, execution="turbo")
        assert "broken" not in registry

    def test_unknown_name_lists_known(self):
        registry = ScenarioRegistry()
        registry.register("tiny", "d", scale=5)
        with pytest.raises(KeyError, match="unknown scenario 'huge'.*tiny"):
            registry.get("huge")

    def test_iteration_and_describe_sorted(self):
        registry = ScenarioRegistry()
        registry.register("b", "second", scale=5)
        registry.register("a", "first", scale=5)
        assert registry.names() == ["a", "b"]
        assert registry.describe() == [("a", "first"), ("b", "second")]
        assert len(registry) == 2


class TestBuiltins:
    def test_smoke_resolves_small(self):
        spec = get_scenario("smoke")
        assert spec.scale == 6
        assert spec.backend == "numpy"

    @pytest.mark.parametrize("scale", PAPER_SCALES)
    def test_paper_table2_scales(self, scale):
        spec = get_scenario(f"paper-s{scale}")
        assert spec.scale == scale
        assert spec.edge_factor == 16

    def test_cache_warm_repeats_with_shared_cache(self):
        spec = get_scenario("cache-warm")
        assert spec.repeats > 1
        assert spec.cache_policy == "shared"

    def test_async_overlap_uses_async_execution(self):
        assert get_scenario("async-overlap").execution == "async"

    def test_async_overlap_proc_selects_process_lanes(self):
        spec = get_scenario("async-overlap-proc")
        assert spec.execution == "async"
        assert spec.async_lanes == "process"
        assert spec.num_files > 1  # per-shard lane tasks to overlap
        # Overrides still win, as with every scenario.
        assert get_scenario(
            "async-overlap-proc", async_lanes="thread"
        ).async_lanes == "thread"

    def test_parallel_mp_selects_mp_communicator(self):
        spec = get_scenario("parallel-mp")
        assert spec.execution == "parallel"
        assert spec.parallel_executor == "mp"

    def test_per_backend_smoke_variants(self):
        for backend in ("python", "numpy", "scipy", "dataframe",
                        "graphblas"):
            assert get_scenario(f"smoke-{backend}").backend == backend

    def test_default_registry_is_a_fresh_copy(self):
        registry = default_registry()
        registry.register("mine", "local addition", scale=5)
        assert "mine" not in BUILTIN_SCENARIOS
        assert "mine" in registry

    def test_scenario_names_sorted(self):
        names = scenario_names()
        assert names == sorted(names)
        assert "smoke" in names and "paper-s18" in names
