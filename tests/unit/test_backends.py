"""Per-backend kernel unit tests against hand-computed expectations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.registry import available_backends, get_backend, register_backend
from repro.backends.base import Backend
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset

ALL_BACKENDS = ["python", "numpy", "scipy", "dataframe", "graphblas"]


def _write_dataset(tmp_path, u, v, n, base=0):
    return EdgeDataset.write(
        tmp_path / "in", np.asarray(u, dtype=np.int64),
        np.asarray(v, dtype=np.int64), num_vertices=n, vertex_base=base,
    )


class TestRegistry:
    def test_all_builtins_present(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_get_backend_instantiates(self):
        assert get_backend("scipy").name == "scipy"

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="available"):
            get_backend("cuda")

    def test_register_duplicate_rejected(self):
        class Dup(Backend):
            name = "scipy"

            def kernel0(self, *a): ...
            def kernel1(self, *a): ...
            def kernel2(self, *a): ...
            def kernel3(self, *a): ...

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Dup)

    def test_register_requires_name(self):
        class NoName(Backend):
            name = ""

            def kernel0(self, *a): ...
            def kernel1(self, *a): ...
            def kernel2(self, *a): ...
            def kernel3(self, *a): ...

        with pytest.raises(ValueError, match="non-empty"):
            register_backend(NoName)


class TestInitialRank:
    def test_unit_norm_and_deterministic(self):
        config = PipelineConfig(scale=6, seed=9)
        r1 = Backend.initial_rank(config)
        r2 = Backend.initial_rank(config)
        assert np.array_equal(r1, r2)
        assert np.abs(r1).sum() == pytest.approx(1.0)
        assert len(r1) == 64

    def test_differs_across_seeds(self):
        a = Backend.initial_rank(PipelineConfig(scale=6, seed=1))
        b = Backend.initial_rank(PipelineConfig(scale=6, seed=2))
        assert not np.array_equal(a, b)


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
class TestKernel1PerBackend:
    def test_sorts_and_preserves(self, backend_name, tmp_path, rng):
        n = 32
        u = rng.integers(0, n, size=300).astype(np.int64)
        v = rng.integers(0, n, size=300).astype(np.int64)
        source = _write_dataset(tmp_path, u, v, n)
        config = PipelineConfig(scale=5, backend=backend_name)
        backend = get_backend(backend_name)
        output, details = backend.kernel1(config, source, tmp_path / "out")
        su, sv = output.read_all()
        assert np.all(np.diff(su) >= 0)
        assert np.array_equal(np.sort(u * n + v), np.sort(su * n + sv))
        assert "phases" in details


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
class TestKernel2PerBackend:
    def test_star_graph_elimination(self, backend_name, tmp_path):
        # Star: all vertices point at 0.  Vertex 0 is the super-node
        # (din = 4) and must be eliminated; no other column survives
        # (every other din is 0), so the final matrix is empty.
        u = [1, 2, 3, 4]
        v = [0, 0, 0, 0]
        source = _write_dataset(tmp_path, u, v, 5)
        config = PipelineConfig(scale=5, backend=backend_name)
        backend = get_backend(backend_name)
        handle, details = backend.kernel2(config, source)
        assert handle.pre_filter_entry_total == 4.0
        assert details["supernode_columns"] == 1
        assert handle.nnz == 0

    def test_known_small_graph(self, backend_name, tmp_path):
        # Graph: 0->1, 0->1 (dup), 1->2, 2->1, 3->2.
        # A counts: (0,1)=2, (1,2)=1, (2,1)=1, (3,2)=1.
        # din: v1 = 3 (max, eliminated), v2 = 2 (kept; not 1, not max).
        # After elimination: (1,2)=1, (3,2)=1.
        # dout: row1 = 1 -> (1,2)=1.0; row3 = 1 -> (3,2)=1.0.
        u = [0, 0, 1, 2, 3]
        v = [1, 1, 2, 1, 2]
        source = _write_dataset(tmp_path, u, v, 4)
        config = PipelineConfig(scale=2, backend=backend_name)
        backend = get_backend(backend_name)
        handle, details = backend.kernel2(config, source)
        assert handle.pre_filter_entry_total == 5.0
        dense = handle.to_scipy_csr().toarray()
        expected = np.zeros((4, 4))
        expected[1, 2] = 1.0
        expected[3, 2] = 1.0
        assert np.allclose(dense, expected)

    def test_rows_are_stochastic_or_empty(self, backend_name, tmp_path, rng):
        n = 64
        u = rng.integers(0, n, size=600).astype(np.int64)
        v = rng.integers(0, n, size=600).astype(np.int64)
        source = _write_dataset(tmp_path, u, v, n)
        config = PipelineConfig(scale=6, backend=backend_name)
        backend = get_backend(backend_name)
        handle, _ = backend.kernel2(config, source)
        row_sums = np.asarray(handle.to_scipy_csr().sum(axis=1)).ravel()
        ok = np.isclose(row_sums, 1.0) | np.isclose(row_sums, 0.0)
        assert ok.all()


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
class TestKernel3PerBackend:
    def test_matches_reference_pagerank(self, backend_name, tmp_path, rng):
        from repro.pagerank.benchmark import benchmark_pagerank

        n = 64
        u = rng.integers(0, n, size=600).astype(np.int64)
        v = rng.integers(0, n, size=600).astype(np.int64)
        source = _write_dataset(tmp_path, u, v, n)
        config = PipelineConfig(scale=6, backend=backend_name, iterations=15,
                                seed=4)
        backend = get_backend(backend_name)
        handle, _ = backend.kernel2(config, source)
        rank, details = backend.kernel3(config, handle)
        reference = benchmark_pagerank(
            handle.to_scipy_csr(), Backend.initial_rank(config),
            damping=config.damping, iterations=15,
        )
        assert np.allclose(rank, reference, atol=1e-12)
        assert details["iterations"] == 15

    def test_wrong_handle_type_rejected(self, backend_name, tmp_path, rng):
        other_name = "scipy" if backend_name != "scipy" else "numpy"
        n = 16
        u = rng.integers(0, n, size=50).astype(np.int64)
        v = rng.integers(0, n, size=50).astype(np.int64)
        source = _write_dataset(tmp_path, u, v, n)
        config = PipelineConfig(scale=4, backend=backend_name)
        handle, _ = get_backend(other_name).kernel2(config, source)
        with pytest.raises(TypeError):
            get_backend(backend_name).kernel3(config, handle)


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
class TestKernel0PerBackend:
    def test_writes_spec_sized_dataset(self, backend_name, tmp_path):
        config = PipelineConfig(scale=6, edge_factor=4, backend=backend_name,
                                num_files=3, seed=2)
        backend = get_backend(backend_name)
        dataset, details = backend.kernel0(config, tmp_path / "k0")
        assert dataset.num_edges == config.num_edges
        assert dataset.num_shards == 3
        u, v = dataset.read_all()
        assert u.min() >= 0 and u.max() < config.num_vertices
        assert details["num_edges"] == config.num_edges

    def test_one_based_files(self, backend_name, tmp_path):
        config = PipelineConfig(scale=5, edge_factor=2, backend=backend_name,
                                vertex_base=1, seed=2)
        backend = get_backend(backend_name)
        dataset, _ = backend.kernel0(config, tmp_path / "k0")
        payload = dataset.shard_paths()[0].read_bytes()
        first = payload.splitlines()[0].split(b"\t")
        assert int(first[0]) >= 1  # 1-based on disk
        u, _ = dataset.read_all()
        assert u.min() >= 0  # 0-based in memory
