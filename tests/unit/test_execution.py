"""Unit tests for the stage graph, executors, and artifact cache."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.backends.registry import get_backend
from repro.core.artifacts import (
    ArtifactCache,
    cache_key,
    k0_cache_fields,
    k1_cache_fields,
)
from repro.core.config import KernelName, PipelineConfig
from repro.core.exceptions import KernelContractError
from repro.core.executor import (
    SerialExecutor,
    ShardParallelExecutor,
    StreamingExecutor,
    available_executions,
    get_executor,
)
from repro.core.stages import (
    ARTIFACT_K0,
    ARTIFACT_RANK,
    ExecutionPlan,
    RankContract,
    Stage,
    StageContext,
    default_plan,
)


class TestExecutionPlan:
    def test_default_plan_shape(self):
        plan = default_plan()
        assert [s.kernel for s in plan.stages] == list(KernelName)
        assert plan.stages[0].officially_timed is False
        assert all(s.officially_timed for s in plan.stages[1:])
        assert all(s.contract is not None for s in plan.stages)
        assert plan.stages[-1].iterations_scaled is True

    def test_stage_lookup(self):
        plan = default_plan()
        assert plan.stage(KernelName.K2_FILTER).provides == "adjacency"
        with pytest.raises(KeyError):
            ExecutionPlan(stages=plan.stages[:2]).stage(KernelName.K3_PAGERANK)

    def test_rejects_unsatisfied_dependency(self):
        orphan = Stage(kernel=KernelName.K1_SORT, provides="out",
                       requires=("never_made",))
        with pytest.raises(ValueError, match="no earlier stage provides"):
            ExecutionPlan(stages=(orphan,))

    def test_rejects_duplicate_provides(self):
        a = Stage(kernel=KernelName.K0_GENERATE, provides="x")
        b = Stage(kernel=KernelName.K1_SORT, provides="x")
        with pytest.raises(ValueError, match="more than one"):
            ExecutionPlan(stages=(a, b))

    def test_rejects_empty_plan(self):
        with pytest.raises(ValueError, match="at least one"):
            ExecutionPlan(stages=())

    def test_nominal_edges(self):
        config = PipelineConfig(scale=6, iterations=5)
        plan = default_plan()
        assert plan.stage(KernelName.K1_SORT).nominal_edges(config) == 1024
        assert plan.stage(KernelName.K3_PAGERANK).nominal_edges(config) == 5120


class TestContracts:
    def _ctx(self, **artifacts):
        config = PipelineConfig(scale=6, seed=1)
        ctx = StageContext(config=config, backend=get_backend("scipy"),
                           base_dir=Path("/nonexistent"))
        ctx.artifacts.update(artifacts)
        return ctx

    def test_missing_artifact_is_diagnosable(self):
        with pytest.raises(KernelContractError, match="never produced"):
            RankContract().check(self._ctx())

    def test_rank_contract_shape(self):
        ctx = self._ctx(**{ARTIFACT_RANK: np.ones(3)})
        with pytest.raises(KernelContractError, match="shape"):
            RankContract().check(ctx)

    def test_rank_contract_negative(self):
        rank = np.full(64, 1.0 / 64)
        rank[5] = -0.25
        ctx = self._ctx(**{ARTIFACT_RANK: rank})
        with pytest.raises(KernelContractError, match="negative"):
            RankContract().check(ctx)

    def test_rank_contract_passes(self):
        ctx = self._ctx(**{ARTIFACT_RANK: np.full(64, 1.0 / 64)})
        RankContract().check(ctx)  # no raise

    def test_filter_contract_rejects_non_finite_total(self):
        from repro.core.stages import ARTIFACT_ADJACENCY, FilterContract

        class _NaNHandle:
            num_vertices = 64
            pre_filter_entry_total = float("nan")

        ctx = self._ctx(**{ARTIFACT_ADJACENCY: _NaNHandle()})
        with pytest.raises(KernelContractError, match="non-finite"):
            FilterContract().check(ctx)


class TestExecutorRegistry:
    def test_available(self):
        assert available_executions() == (
            "serial", "streaming", "parallel", "async",
        )

    def test_lookup(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("streaming"), StreamingExecutor)
        assert isinstance(get_executor("parallel"), ShardParallelExecutor)

    def test_lazy_async_lookup(self):
        from repro.core.async_executor import AsyncExecutor

        assert isinstance(get_executor("async"), AsyncExecutor)
        # Resolution is cached: the registry now holds the class itself.
        assert isinstance(get_executor("async"), AsyncExecutor)

    def test_unknown_raises_keyerror_listing_valid(self):
        with pytest.raises(KeyError, match="serial, streaming, parallel, async"):
            get_executor("quantum")

    def test_custom_plan_is_honoured(self):
        # A one-stage plan runs only K0 (no contract dependencies broken).
        plan = ExecutionPlan(stages=(default_plan().stages[0],))
        result = SerialExecutor(plan).execute(PipelineConfig(scale=6, seed=1))
        assert [k.kernel for k in result.kernels] == [KernelName.K0_GENERATE]
        assert result.rank is None


class TestConfigExecutionFields:
    def test_defaults(self):
        config = PipelineConfig(scale=6)
        assert config.execution == "serial"
        assert config.cache_dir is None
        assert config.parallel_ranks == 4

    def test_rejects_unknown_execution(self):
        with pytest.raises(ValueError, match="execution"):
            PipelineConfig(scale=6, execution="turbo")

    def test_rejects_bad_ranks_and_batch(self):
        with pytest.raises(ValueError):
            PipelineConfig(scale=6, parallel_ranks=0)
        with pytest.raises(ValueError):
            PipelineConfig(scale=6, streaming_batch_edges=0)

    def test_round_trip_with_cache_dir(self, tmp_path):
        config = PipelineConfig(scale=6, execution="streaming",
                                cache_dir=tmp_path / "c", parallel_ranks=2)
        restored = PipelineConfig.from_dict(config.to_dict())
        assert restored == config
        assert isinstance(restored.cache_dir, Path)


class TestSweepCachePreference:
    def test_best_of_prefers_uncached_timings(self, monkeypatch):
        from repro.core.results import KernelResult, PipelineResult
        from repro.harness import sweep as sweep_mod
        from repro.harness.sweep import SweepPlan

        calls = {"n": 0}

        def fake_run_pipeline(config, verify=False):
            # First repeat: real (slow) K0/K1; later repeats: cache
            # hits that are much faster but meaningless as throughput.
            calls["n"] += 1
            hit = calls["n"] > 1
            result = PipelineResult(config=config)
            for kernel in KernelName:
                cached = hit and kernel in (KernelName.K0_GENERATE,
                                            KernelName.K1_SORT)
                result.kernels.append(
                    KernelResult(
                        kernel=kernel,
                        seconds=0.001 if hit else 0.5,
                        edges_processed=config.num_edges,
                        details={"artifact_cache": "hit"} if cached else {},
                    )
                )
            return result

        monkeypatch.setattr(sweep_mod, "run_pipeline", fake_run_pipeline)
        plan = SweepPlan(scales=[6], backends=["scipy"], repeats=3,
                         cache_dir=Path("unused"))
        records = {r.kernel: r for r in sweep_mod.run_sweep(plan)}
        # Cached K1 reads never displace the real sort measurement...
        assert records["k1-sort"].seconds == 0.5
        assert not records["k1-sort"].cached
        assert records["k0-generate"].seconds == 0.5
        # ...while genuinely re-measured kernels keep best-of as before.
        assert records["k2-filter"].seconds == 0.001

    def test_all_hit_records_are_flagged_cached(self, monkeypatch, caplog):
        # A warm cache (earlier sweep populated it) means every repeat
        # hits; the record is kept but marked so figures/reports can
        # tell cache-read speed from real throughput.
        import logging

        from repro.core.results import KernelResult, PipelineResult
        from repro.harness import sweep as sweep_mod
        from repro.harness.sweep import SweepPlan

        def fake_run_pipeline(config, verify=False):
            result = PipelineResult(config=config)
            for kernel in KernelName:
                cached = kernel in (KernelName.K0_GENERATE,
                                    KernelName.K1_SORT)
                result.kernels.append(
                    KernelResult(
                        kernel=kernel,
                        seconds=0.001,
                        edges_processed=config.num_edges,
                        details={"artifact_cache": "hit"} if cached else {},
                    )
                )
            return result

        monkeypatch.setattr(sweep_mod, "run_pipeline", fake_run_pipeline)
        plan = SweepPlan(scales=[6], backends=["scipy"], repeats=2,
                         cache_dir=Path("warm"))
        with caplog.at_level(logging.WARNING, logger="repro.harness"):
            records = {r.kernel: r for r in sweep_mod.run_sweep(plan)}
        assert records["k1-sort"].cached
        assert not records["k2-filter"].cached
        assert any("artifact-cache read" in m for m in caplog.messages)

    def test_cached_records_excluded_from_figures(self):
        from repro.harness.figures import build_figure_series
        from repro.harness.records import MeasurementRecord

        records = [
            MeasurementRecord("scipy", 6, 1024, "k0-generate", 0.0001,
                              10_240_000.0, False, cached=True),
            MeasurementRecord("numpy", 6, 1024, "k0-generate", 0.1,
                              10_240.0, False),
        ]
        figure = build_figure_series("fig4", records)
        # The cache read never shows up as generate throughput.
        assert figure.backends() == ["numpy"]

    def test_cached_records_excluded_from_report_totals(self):
        from repro.harness.records import MeasurementRecord
        from repro.harness.report import build_report

        records = [
            MeasurementRecord("scipy", 6, 1024, "k1-sort", 0.0001,
                              10_240_000.0, True, cached=True),
            MeasurementRecord("scipy", 6, 1024, "k2-filter", 0.25,
                              4096.0, True),
            MeasurementRecord("scipy", 6, 1024, "k3-pagerank", 0.75,
                              27306.0, True),
        ]
        document = build_report(records)
        # Total sums only the really-measured kernels and is flagged.
        assert "| scipy | 6 | 1.0000 * |" in document
        assert "omits kernels served from the artifact cache" in document

    def test_cached_flag_survives_save_load(self, tmp_path):
        from repro.harness.records import (
            MeasurementRecord,
            load_records,
            save_records,
        )

        records = [
            MeasurementRecord("scipy", 6, 1024, "k0-generate", 0.001,
                              1024000.0, False, cached=True),
            MeasurementRecord("scipy", 6, 1024, "k1-sort", 0.5,
                              2048.0, True),
        ]
        for name in ("r.json", "r.csv"):
            path = tmp_path / name
            save_records(records, path)
            loaded = load_records(path)
            assert [r.cached for r in loaded] == [True, False]


class TestArtifactCacheUnit:
    def test_root_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.touch()
        with pytest.raises(ValueError, match="not a directory"):
            ArtifactCache(not_a_dir)

    def test_key_is_order_independent_and_sensitive(self):
        assert (cache_key({"a": 1, "b": 2})
                == cache_key({"b": 2, "a": 1}))
        assert cache_key({"a": 1}) != cache_key({"a": 2})

    def test_k0_and_k1_fields_differ(self):
        config = PipelineConfig(scale=6)
        assert (cache_key(k0_cache_fields(config))
                != cache_key(k1_cache_fields(config)))

    def test_key_tracks_executing_backend_not_config(self):
        # Pipeline(config, backend=instance) may run a backend other
        # than config.backend; the cache must key on what actually ran.
        config = PipelineConfig(scale=6, backend="numpy")
        assert (cache_key(k0_cache_fields(config, "python"))
                != cache_key(k0_cache_fields(config)))
        assert (cache_key(k0_cache_fields(config, "numpy"))
                == cache_key(k0_cache_fields(config)))

    def test_k1_key_tracks_sort_settings(self):
        base = PipelineConfig(scale=6)
        radix = base.with_overrides(sort_algorithm="radix")
        assert (cache_key(k1_cache_fields(base))
                != cache_key(k1_cache_fields(radix)))
        # K0 does not depend on the sort algorithm.
        assert (cache_key(k0_cache_fields(base))
                == cache_key(k0_cache_fields(radix)))

    def test_miss_then_hit(self, tmp_path, tiny_dataset):
        cache = ArtifactCache(tmp_path / "cache")
        calls = []

        def producer(entry):
            calls.append(entry)
            u, v = tiny_dataset.read_all()
            from repro.edgeio.dataset import EdgeDataset

            ds = EdgeDataset.write(entry, u, v, num_vertices=64)
            return ds, {"fresh": True}

        fields = {"kernel": "k0", "scale": 6}
        first, d1 = cache.dataset("k0", fields, producer)
        second, d2 = cache.dataset("k0", fields, producer)
        assert len(calls) == 1
        assert d1["artifact_cache"] == "miss"
        assert d2["artifact_cache"] == "hit"
        assert d1["artifact_cache_key"] == d2["artifact_cache_key"]
        assert second.num_edges == first.num_edges

    def test_torn_entry_is_purged_and_regenerated(self, tmp_path, tiny_dataset):
        cache = ArtifactCache(tmp_path / "cache")

        def producer(entry):
            u, v = tiny_dataset.read_all()
            from repro.edgeio.dataset import EdgeDataset

            return EdgeDataset.write(entry, u, v, num_vertices=64), {}

        fields = {"kernel": "k0", "scale": 6}
        first, _ = cache.dataset("k0", fields, producer)
        # Corrupt the entry: delete a shard but keep the manifest.
        first.shard_paths()[0].unlink()
        repaired, details = cache.dataset("k0", fields, producer)
        assert details["artifact_cache"] == "miss"
        assert repaired.read_all()[0].shape == tiny_dataset.read_all()[0].shape

    def test_publish_leaves_no_staging_dirs(self, tmp_path, tiny_dataset):
        cache = ArtifactCache(tmp_path / "cache")

        def producer(entry):
            u, v = tiny_dataset.read_all()
            from repro.edgeio.dataset import EdgeDataset

            return EdgeDataset.write(entry, u, v, num_vertices=64), {}

        dataset, details = cache.dataset("k0", {"scale": 6}, producer)
        # The published dataset lives at the final entry path...
        entry = cache.entry_dir("k0", details["artifact_cache_key"])
        assert dataset.directory == entry
        # ...and no process-private staging dirs remain behind.
        leftovers = [p for p in (tmp_path / "cache" / "k0").iterdir()
                     if ".tmp-" in p.name]
        assert leftovers == []

    def test_entry_records_provenance(self, tmp_path, tiny_dataset):
        cache = ArtifactCache(tmp_path / "cache")

        def producer(entry):
            u, v = tiny_dataset.read_all()
            from repro.edgeio.dataset import EdgeDataset

            return EdgeDataset.write(entry, u, v, num_vertices=64), {}

        fields = {"kernel": "k0", "scale": 6, "seed": 9}
        _, details = cache.dataset("k0", fields, producer)
        entry = cache.entry_dir("k0", details["artifact_cache_key"])
        assert (entry / "cache-entry.json").exists()
        assert '"seed": 9' in (entry / "cache-entry.json").read_text()
