"""Unit tests for the dependency-aware task scheduler."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import lanes as lanes_module
from repro.core.lanes import LaneTask
from repro.core.scheduler import SchedulerError, TaskGraph


class TestGraphConstruction:
    def test_duplicate_name_rejected(self):
        graph = TaskGraph()
        graph.add("a", lambda r: 1)
        with pytest.raises(ValueError, match="duplicate"):
            graph.add("a", lambda r: 2)

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        with pytest.raises(ValueError, match="not in the graph"):
            graph.add("b", lambda r: 1, deps=("never",))

    def test_cycles_inexpressible(self):
        # Dependencies must precede their dependents, so a cycle cannot
        # even be written down.
        graph = TaskGraph()
        graph.add("a", lambda r: 1)
        with pytest.raises(ValueError):
            graph.add("a2", lambda r: 1, deps=("a", "a2"))

    def test_empty_graph_runs(self):
        result = TaskGraph().run()
        assert result.results == {}
        assert result.wall_seconds == 0.0


class TestExecution:
    def test_results_flow_to_dependents(self):
        graph = TaskGraph()
        graph.add("a", lambda r: 2)
        graph.add("b", lambda r: 3)
        graph.add("c", lambda r: r["a"] * r["b"], deps=("a", "b"))
        assert graph.run().results["c"] == 6

    def test_dependency_order_respected(self):
        order = []
        lock = threading.Lock()

        def record(name):
            def fn(results):
                with lock:
                    order.append(name)
            return fn

        graph = TaskGraph()
        graph.add("first", record("first"))
        graph.add("second", record("second"), deps=("first",))
        graph.add("third", record("third"), deps=("second",))
        graph.run(max_workers=4)
        assert order == ["first", "second", "third"]

    def test_diamond_joins_both_parents(self):
        graph = TaskGraph()
        graph.add("root", lambda r: 1)
        graph.add("left", lambda r: r["root"] + 1, deps=("root",))
        graph.add("right", lambda r: r["root"] + 2, deps=("root",))
        graph.add(
            "join", lambda r: r["left"] * r["right"], deps=("left", "right")
        )
        assert graph.run().results["join"] == 6

    def test_single_worker_degenerates_to_serial(self):
        active = {"now": 0, "max": 0}
        lock = threading.Lock()

        def fn(results):
            with lock:
                active["now"] += 1
                active["max"] = max(active["max"], active["now"])
            time.sleep(0.01)
            with lock:
                active["now"] -= 1

        graph = TaskGraph()
        for index in range(4):
            graph.add(f"t{index}", fn)
        graph.run(max_workers=1)
        assert active["max"] == 1

    def test_independent_tasks_overlap(self):
        def sleepy(results):
            time.sleep(0.05)

        graph = TaskGraph()
        graph.add("a", sleepy)
        graph.add("b", sleepy)
        result = graph.run(max_workers=2)
        assert result.wall_seconds < 0.095  # genuinely concurrent
        assert result.busy_seconds >= 0.095
        assert result.overlap_saved_seconds > 0.0


class TestFailureHandling:
    def test_failure_raises_with_task_name(self):
        graph = TaskGraph()
        graph.add("ok", lambda r: 1)

        def boom(results):
            raise RuntimeError("kaput")

        graph.add("bad", boom, deps=("ok",))
        with pytest.raises(SchedulerError, match="'bad' failed: kaput"):
            graph.run()

    def test_failure_cause_chained(self):
        graph = TaskGraph()
        graph.add("bad", lambda r: 1 / 0)
        with pytest.raises(SchedulerError) as excinfo:
            graph.run()
        assert isinstance(excinfo.value.__cause__, ZeroDivisionError)

    def test_pending_tasks_not_started_after_failure(self):
        ran = []

        def boom(results):
            raise RuntimeError("kaput")

        graph = TaskGraph()
        graph.add("bad", boom)
        graph.add("after", lambda r: ran.append("after"), deps=("bad",))
        with pytest.raises(SchedulerError):
            graph.run()
        assert ran == []


class TestTimingAttribution:
    def test_group_busy_sums_member_tasks(self):
        graph = TaskGraph()
        graph.add("a1", lambda r: time.sleep(0.02), group="alpha")
        graph.add("a2", lambda r: time.sleep(0.02), deps=("a1",), group="alpha")
        graph.add("b1", lambda r: time.sleep(0.01), group="beta")
        result = graph.run(max_workers=2)
        busy = result.group_busy_seconds()
        assert busy["alpha"] >= 0.04
        assert busy["beta"] >= 0.01
        assert result.busy_seconds == pytest.approx(
            busy["alpha"] + busy["beta"]
        )

    def test_ungrouped_task_groups_under_own_name(self):
        graph = TaskGraph()
        graph.add("solo", lambda r: None)
        result = graph.run()
        assert "solo" in result.group_busy_seconds()


class TestProcessLaneTasks:
    """Lane marking, dispatch, and busy attribution for lane tasks."""

    @pytest.fixture()
    def sleep_op(self, monkeypatch):
        """A registered lane op that sleeps then echoes its payload."""

        def op(payload):
            time.sleep(payload.get("sleep", 0.0))
            return payload["value"]

        registry = dict(lanes_module.LANE_OPS)
        registry["test-sleep"] = op
        monkeypatch.setattr(lanes_module, "LANE_OPS", registry)
        return "test-sleep"

    def test_unknown_lane_rejected(self):
        with pytest.raises(ValueError, match="lane must be one of"):
            TaskGraph().add("t", lambda r: 1, lane="fiber")

    def test_process_lane_without_pool_runs_op_inline(self, sleep_op):
        graph = TaskGraph()
        graph.add(
            "t",
            lambda r: LaneTask(sleep_op, {"value": 41}),
            lane="process",
        )
        result = graph.run()
        assert result.results["t"] == 41
        assert result.timings["t"].lane == "process"

    def test_process_lane_task_must_return_descriptor(self):
        graph = TaskGraph()
        graph.add("t", lambda r: 41, lane="process")
        with pytest.raises(SchedulerError, match="must return a LaneTask"):
            graph.run()

    def test_lane_result_flows_to_dependents(self, sleep_op):
        graph = TaskGraph()
        graph.add(
            "a", lambda r: LaneTask(sleep_op, {"value": 6}), lane="process"
        )
        graph.add("b", lambda r: r["a"] * 7, deps=("a",))
        assert graph.run().results["b"] == 42

    def test_group_busy_includes_lane_offloaded_work(self, sleep_op):
        # The satellite requirement: a kernel's busy sum must not lose
        # the work that moved onto a lane.
        graph = TaskGraph()
        graph.add(
            "enc",
            lambda r: LaneTask(sleep_op, {"value": 1, "sleep": 0.03}),
            lane="process", group="k0",
        )
        graph.add("gen", lambda r: time.sleep(0.01), group="k0")
        result = graph.run(max_workers=2)
        busy = result.group_busy_seconds()
        assert busy["k0"] >= 0.04  # both tasks, lane-offloaded included
        lane_busy = result.lane_busy_seconds()
        assert lane_busy["process"] >= 0.03
        assert lane_busy["thread"] >= 0.01
        assert result.busy_seconds == pytest.approx(
            lane_busy["process"] + lane_busy["thread"]
        )

    def test_overlap_saved_non_negative_with_lane_work(self, sleep_op):
        # Two independent sleepy lane tasks plus a sleepy thread task:
        # genuine overlap, so busy - wall must come out non-negative.
        graph = TaskGraph()
        for index in range(2):
            graph.add(
                f"lane{index}",
                lambda r: LaneTask(sleep_op, {"value": 0, "sleep": 0.05}),
                lane="process", group="codec",
            )
        graph.add("compute", lambda r: time.sleep(0.05), group="k2")
        result = graph.run(max_workers=3)
        assert result.overlap_saved_seconds >= 0.0
        assert result.wall_seconds < 0.145  # ran concurrently

    def test_queue_wait_excluded_from_busy(self):
        # A dispatch that queues behind a busy lane worker must not
        # count the wait as compute — or one worker's work would be
        # billed to every queued task.
        class StubPool:
            def run_task_timed(self, task):
                time.sleep(0.05)  # 0.01 compute + 0.04 reported wait
                return task.payload["value"], 0.04

        graph = TaskGraph()
        graph.add(
            "t", lambda r: LaneTask("any", {"value": 5}), lane="process"
        )
        result = graph.run(lane_pool=StubPool())
        assert result.results["t"] == 5
        timing = result.timings["t"]
        assert timing.queue_wait == 0.04
        assert timing.seconds == pytest.approx(
            (timing.finished - timing.started) - 0.04
        )
        assert result.lane_busy_seconds()["process"] < 0.04

    def test_lane_op_failure_surfaces_as_scheduler_error(self, monkeypatch):
        def boom(payload):
            raise RuntimeError("lane kaput")

        registry = dict(lanes_module.LANE_OPS)
        registry["test-boom"] = boom
        monkeypatch.setattr(lanes_module, "LANE_OPS", registry)
        graph = TaskGraph()
        graph.add(
            "bad", lambda r: LaneTask("test-boom", {}), lane="process"
        )
        with pytest.raises(SchedulerError, match="lane kaput"):
            graph.run()

    def test_unknown_op_rejected(self):
        graph = TaskGraph()
        graph.add(
            "bad", lambda r: LaneTask("no-such-op", {}), lane="process"
        )
        with pytest.raises(SchedulerError, match="unknown lane op"):
            graph.run()


class TestResultLifetime:
    def test_intermediate_results_freed_after_last_reader(self):
        graph = TaskGraph()
        graph.add("big", lambda r: list(range(1000)))
        graph.add("mid", lambda r: len(r["big"]), deps=("big",))
        graph.add("sink", lambda r: r["mid"] + 1, deps=("mid",))
        result = graph.run()
        # Intermediates were dropped once nothing could read them...
        assert "big" not in result.results
        assert "mid" not in result.results
        # ...while the sink (no dependents) is kept.
        assert result.results["sink"] == 1001
        # Timings survive freeing.
        assert set(result.timings) == {"big", "mid", "sink"}

    def test_retained_results_survive_their_readers(self):
        graph = TaskGraph()
        graph.add("kept", lambda r: 7, retain=True)
        graph.add("reader", lambda r: r["kept"] * 2, deps=("kept",))
        result = graph.run()
        assert result.results["kept"] == 7
        assert result.results["reader"] == 14

    def test_shared_dependency_freed_only_after_all_readers(self):
        graph = TaskGraph()
        graph.add("root", lambda r: 5)
        graph.add("a", lambda r: r["root"] + 1, deps=("root",))
        graph.add("b", lambda r: r["root"] + 2, deps=("root",))
        result = graph.run(max_workers=2)
        assert "root" not in result.results
        assert result.results["a"] == 6 and result.results["b"] == 7


class TestTracedScheduling:
    """Span emission and span↔timing parity for traced graph runs."""

    def _traced_run(self, graph, **kwargs):
        from repro.core import trace

        collector = trace.TraceCollector()
        with trace.activate(collector):
            result = graph.run(**kwargs)
        return result, collector

    def test_untraced_run_records_nothing(self):
        graph = TaskGraph()
        graph.add("a", lambda r: 1)
        result = graph.run()
        assert result.trace_origin is None

    def test_task_spans_nest_under_the_schedule_span(self):
        graph = TaskGraph()
        graph.add("a", lambda r: 1, group="k0")
        graph.add("b", lambda r: r["a"] + 1, deps=("a",), group="k1")
        result, collector = self._traced_run(graph, max_workers=2)
        assert result.trace_origin is not None
        spans = {s.name: s for s in collector.spans()}
        assert set(spans) == {"schedule", "task:a", "task:b"}
        schedule = spans["schedule"]
        assert schedule.args["tasks"] == 2
        assert schedule.dur == result.wall_seconds
        for name in ("task:a", "task:b"):
            assert spans[name].cat == "task"
            assert spans[name].parent_id == schedule.span_id

    def test_span_durations_match_timings_bitwise(self):
        graph = TaskGraph()
        graph.add("a", lambda r: time.sleep(0.01), group="k0")
        graph.add("b", lambda r: time.sleep(0.01), group="k0")
        graph.add("c", lambda r: time.sleep(0.005), deps=("a", "b"),
                  group="k1")
        result, collector = self._traced_run(graph, max_workers=2)
        spans = {s.name: s for s in collector.spans()}
        for name, timing in result.timings.items():
            span_row = spans[f"task:{name}"]
            # Same perf_counter samples, same float arithmetic: the
            # spans are the timings, not a second measurement.
            assert span_row.dur - span_row.args["queue_wait"] \
                == timing.seconds
            # start parity is up to one float-add rounding (the span is
            # t0-relative, the timing clock0-relative).
            assert span_row.start == pytest.approx(
                result.trace_origin + timing.started, abs=1e-9
            )

    def test_group_busy_rederivable_from_spans(self):
        from repro.core.trace import task_busy_seconds

        graph = TaskGraph()
        graph.add("a", lambda r: time.sleep(0.01), group="k0")
        graph.add("b", lambda r: time.sleep(0.01), deps=("a",), group="k1")
        result, collector = self._traced_run(graph, max_workers=2)
        derived = task_busy_seconds(collector.span_docs())
        busy = result.group_busy_seconds()
        assert set(derived) == set(busy)
        for group, seconds in busy.items():
            assert derived[group] == pytest.approx(seconds, abs=1e-6)

    def test_lane_busy_rederivable_from_spans(self):
        from repro.core.trace import task_busy_seconds

        class StubPool:
            def run_task_timed(self, task):
                time.sleep(0.02)
                return task.payload["value"], 0.015

        graph = TaskGraph()
        graph.add("t", lambda r: LaneTask("any", {"value": 5}),
                  lane="process", group="codec")
        graph.add("u", lambda r: time.sleep(0.005), group="k2")
        result, collector = self._traced_run(
            graph, max_workers=2, lane_pool=StubPool()
        )
        derived = task_busy_seconds(collector.span_docs(), key="lane")
        busy = result.lane_busy_seconds()
        assert set(derived) == set(busy)
        for lane, seconds in busy.items():
            assert derived[lane] == pytest.approx(seconds, abs=1e-6)

    def test_failing_task_span_still_closes_with_error(self):
        graph = TaskGraph()
        graph.add("bad", lambda r: 1 / 0)
        from repro.core import trace

        collector = trace.TraceCollector()
        with trace.activate(collector):
            with pytest.raises(SchedulerError):
                graph.run()
        spans = {s.name: s for s in collector.spans()}
        assert "task:bad" in spans
        assert spans["task:bad"].dur >= 0.0
