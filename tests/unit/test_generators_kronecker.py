"""Unit tests for the Graph500 Kronecker generator (Kernel 0)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators.base import GeneratorSpec, validate_edge_list
from repro.generators.kronecker import (
    KroneckerParams,
    kronecker_blocks,
    kronecker_edges,
)


class TestGeneratorSpec:
    def test_sizes_match_paper_formulas(self):
        spec = GeneratorSpec(scale=16, edge_factor=16)
        assert spec.num_vertices == 65536          # N = 2^S
        assert spec.num_edges == 16 * 65536        # M = k*N
        assert spec.memory_bytes == spec.num_edges * 16

    def test_scale_30_matches_paper_example(self):
        # "for a value of S = 30, N = 1,073,741,824, M = 17,179,869,184"
        spec = GeneratorSpec(scale=30, edge_factor=16)
        assert spec.num_vertices == 1_073_741_824
        assert spec.num_edges == 17_179_869_184

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            GeneratorSpec(scale=0)
        with pytest.raises(ValueError):
            GeneratorSpec(scale=41)

    def test_rejects_bad_edge_factor(self):
        with pytest.raises(ValueError):
            GeneratorSpec(scale=4, edge_factor=0)


class TestKroneckerParams:
    def test_default_is_graph500(self):
        params = KroneckerParams()
        assert (params.a, params.b, params.c) == (0.57, 0.19, 0.19)
        assert params.d == pytest.approx(0.05)

    def test_rejects_mass_overflow(self):
        with pytest.raises(ValueError, match="positive mass"):
            KroneckerParams(a=0.5, b=0.3, c=0.2)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            KroneckerParams(a=0.0)
        with pytest.raises(ValueError):
            KroneckerParams(a=1.5)


class TestKroneckerEdges:
    def test_shapes_and_bounds(self):
        u, v = kronecker_edges(8, 16, seed=1)
        assert len(u) == len(v) == 16 * 256
        validate_edge_list(u, v, 256)

    def test_dtype_is_int64(self):
        u, v = kronecker_edges(5, 2, seed=1)
        assert u.dtype == np.int64 and v.dtype == np.int64

    def test_seeded_reproducibility(self):
        a = kronecker_edges(7, 8, seed=99)
        b = kronecker_edges(7, 8, seed=99)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = kronecker_edges(7, 8, seed=1)
        b = kronecker_edges(7, 8, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_num_edges_override(self):
        u, _ = kronecker_edges(6, 16, seed=3, num_edges=100)
        assert len(u) == 100

    def test_skew_toward_low_vertices_without_permutation(self):
        # With a=0.57 the distribution concentrates in the low quadrant;
        # disabling the vertex permutation exposes this directly.
        params = KroneckerParams(permute_vertices=False, permute_edges=False)
        u, _ = kronecker_edges(10, 16, seed=5, params=params)
        low_half = (u < 512).mean()
        assert low_half > 0.6  # E[P(low bit)] = a+b = 0.76 per level

    def test_power_law_like_degree_skew(self):
        u, v = kronecker_edges(10, 16, seed=11)
        n = 1 << 10
        din = np.bincount(v, minlength=n)
        # Heavy tail: max in-degree far above mean (uniform would be ~16).
        assert din.max() > 8 * din.mean()

    def test_duplicate_edges_exist(self):
        # The paper relies on duplicates ("a (u,v) edge may be generated
        # during kernel 0 more than once").
        u, v = kronecker_edges(8, 16, seed=2)
        pairs = u * (1 << 8) + v
        assert len(np.unique(pairs)) < len(pairs)


class TestKroneckerBlocks:
    def test_blocks_cover_total(self):
        blocks = list(kronecker_blocks(7, 4, block_edges=100, seed=1))
        total = sum(len(b[0]) for b in blocks)
        assert total == 4 * 128
        assert all(len(b[0]) == 100 for b in blocks[:-1])

    def test_blocks_reproducible_and_order_independent(self):
        first = list(kronecker_blocks(7, 4, block_edges=128, seed=5))
        second = list(kronecker_blocks(7, 4, block_edges=128, seed=5))
        for (u1, v1), (u2, v2) in zip(first, second):
            assert np.array_equal(u1, u2) and np.array_equal(v1, v2)

    def test_block_size_independent_distribution_bounds(self):
        for u, v in kronecker_blocks(6, 4, block_edges=64, seed=3):
            validate_edge_list(u, v, 64)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            list(kronecker_blocks(6, 4, block_edges=0, seed=1))
