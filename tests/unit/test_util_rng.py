"""Unit tests for repro._util.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.rng import derive_seed, resolve_rng


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_is_reproducible(self):
        a = resolve_rng(42).random(5)
        b = resolve_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert resolve_rng(gen) is gen

    def test_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            resolve_rng(True)
        with pytest.raises(TypeError):
            resolve_rng("seed")


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_children_differ(self):
        seeds = {derive_seed(7, i) for i in range(100)}
        assert len(seeds) == 100

    def test_path_nesting_matters(self):
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)

    def test_different_bases_differ(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_requires_path(self):
        with pytest.raises(ValueError, match="at least one path"):
            derive_seed(7)

    def test_rejects_negative_path(self):
        with pytest.raises(ValueError):
            derive_seed(7, -1)

    def test_result_usable_as_seed(self):
        seed = derive_seed(7, 12)
        assert seed >= 0
        np.random.default_rng(seed)  # must not raise
