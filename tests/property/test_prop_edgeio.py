"""Property-based tests for edge-file encoding and datasets."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.edgeio.dataset import EdgeDataset, shard_slices
from repro.edgeio.format import decode_edges, encode_edges

labels = st.integers(min_value=0, max_value=2**40)


@st.composite
def edge_arrays(draw, max_edges=200):
    m = draw(st.integers(min_value=0, max_value=max_edges))
    u = draw(st.lists(labels, min_size=m, max_size=m))
    v = draw(st.lists(labels, min_size=m, max_size=m))
    return np.array(u, dtype=np.int64), np.array(v, dtype=np.int64)


class TestFormatRoundTrip:
    @given(edges=edge_arrays())
    def test_encode_decode_identity(self, edges):
        u, v = edges
        ru, rv = decode_edges(encode_edges(u, v))
        assert np.array_equal(u, ru)
        assert np.array_equal(v, rv)

    @given(edges=edge_arrays(), base=st.sampled_from([0, 1]))
    def test_identity_under_vertex_base(self, edges, base):
        u, v = edges
        payload = encode_edges(u, v, vertex_base=base)
        ru, rv = decode_edges(payload, vertex_base=base)
        assert np.array_equal(u, ru)
        assert np.array_equal(v, rv)

    @given(edges=edge_arrays(max_edges=60))
    def test_strict_equals_fast(self, edges):
        u, v = edges
        payload = encode_edges(u, v)
        fast = decode_edges(payload)
        strict = decode_edges(payload, strict=True)
        assert np.array_equal(fast[0], strict[0])
        assert np.array_equal(fast[1], strict[1])

    @given(edges=edge_arrays(max_edges=50))
    def test_line_count_matches_edges(self, edges):
        u, v = edges
        payload = encode_edges(u, v)
        assert payload.count(b"\n") == len(u)


class TestShardSlicesProperties:
    @given(
        m=st.integers(min_value=0, max_value=100000),
        shards=st.integers(min_value=1, max_value=64),
    )
    def test_partition_properties(self, m, shards):
        slices = shard_slices(m, shards)
        assert len(slices) == shards
        assert slices[0][0] == 0
        assert slices[-1][1] == m
        sizes = [end - start for start, end in slices]
        assert sum(sizes) == m
        assert max(sizes) - min(sizes) <= 1
        for (_, prev_end), (next_start, _) in zip(slices, slices[1:]):
            assert prev_end == next_start


class TestDatasetRoundTrip:
    @settings(deadline=None, max_examples=30)
    @given(
        edges=edge_arrays(max_edges=150),
        shards=st.integers(min_value=1, max_value=6),
        fmt=st.sampled_from(["tsv", "npy"]),
    )
    def test_write_open_read_identity(self, tmp_path_factory, edges, shards, fmt):
        u, v = edges
        n = int(max(u.max(initial=0), v.max(initial=0))) + 1
        base = tmp_path_factory.mktemp("prop-ds")
        EdgeDataset.write(base / "d", u, v, num_vertices=n,
                          num_shards=shards, fmt=fmt)
        ds = EdgeDataset.open(base / "d")
        ru, rv = ds.read_all()
        assert np.array_equal(u, ru)
        assert np.array_equal(v, rv)
        assert ds.num_edges == len(u)

    @settings(deadline=None, max_examples=20)
    @given(
        edges=edge_arrays(max_edges=150),
        batch=st.integers(min_value=1, max_value=64),
    )
    def test_iter_batches_reassembles(self, tmp_path_factory, edges, batch):
        u, v = edges
        n = int(max(u.max(initial=0), v.max(initial=0))) + 1
        base = tmp_path_factory.mktemp("prop-batch")
        ds = EdgeDataset.write(base / "d", u, v, num_vertices=n, num_shards=3)
        batches = list(ds.iter_batches(batch))
        if batches:
            cat_u = np.concatenate([b[0] for b in batches])
            cat_v = np.concatenate([b[1] for b in batches])
        else:
            cat_u = np.empty(0, dtype=np.int64)
            cat_v = np.empty(0, dtype=np.int64)
        assert np.array_equal(cat_u, u)
        assert np.array_equal(cat_v, v)
        assert all(len(b[0]) == batch for b in batches[:-1])
