"""Property-based tests of the Kernel 2 specification invariants.

These run the actual backend Kernel 2 on arbitrary edge lists and check
the contracts the paper states: entries sum to M before filtering,
eliminated columns are empty, surviving rows are stochastic, and all
backends agree — the core of the benchmark's verifiability story.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.registry import get_backend
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset

N = 16
CONFIG = PipelineConfig(scale=4, seed=1)


@st.composite
def edge_lists(draw, max_edges=120):
    m = draw(st.integers(min_value=1, max_value=max_edges))
    u = draw(st.lists(st.integers(0, N - 1), min_size=m, max_size=m))
    v = draw(st.lists(st.integers(0, N - 1), min_size=m, max_size=m))
    return np.array(u, dtype=np.int64), np.array(v, dtype=np.int64)


def _run_kernel2(tmp_path_factory, u, v, backend_name="numpy"):
    base = tmp_path_factory.mktemp("prop-k2")
    ds = EdgeDataset.write(base / "in", u, v, num_vertices=N)
    backend = get_backend(backend_name)
    return backend.kernel2(CONFIG, ds)


class TestKernel2Contracts:
    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists())
    def test_entries_sum_to_m(self, tmp_path_factory, edges):
        u, v = edges
        handle, _ = _run_kernel2(tmp_path_factory, u, v)
        assert handle.pre_filter_entry_total == len(u)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists())
    def test_eliminated_columns_are_empty(self, tmp_path_factory, edges):
        u, v = edges
        handle, details = _run_kernel2(tmp_path_factory, u, v)
        matrix = handle.to_scipy_csr()
        # Recompute the elimination rule from the raw edges.
        din = np.bincount(v, minlength=N).astype(float)
        eliminate = (din == din.max()) | (din == 1)
        col_sums = np.asarray(matrix.sum(axis=0)).ravel()
        assert np.all(col_sums[eliminate] == 0.0)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists())
    def test_surviving_rows_stochastic(self, tmp_path_factory, edges):
        u, v = edges
        handle, _ = _run_kernel2(tmp_path_factory, u, v)
        row_sums = np.asarray(handle.to_scipy_csr().sum(axis=1)).ravel()
        assert np.all(
            np.isclose(row_sums, 1.0) | np.isclose(row_sums, 0.0)
        )

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists())
    def test_values_are_valid_probabilities(self, tmp_path_factory, edges):
        u, v = edges
        handle, _ = _run_kernel2(tmp_path_factory, u, v)
        matrix = handle.to_scipy_csr()
        assert (matrix.data > 0).all()
        assert (matrix.data <= 1.0 + 1e-12).all()

    @settings(max_examples=15, deadline=None)
    @given(edges=edge_lists(max_edges=60))
    def test_backends_agree(self, tmp_path_factory, edges):
        u, v = edges
        reference, _ = _run_kernel2(tmp_path_factory, u, v, "scipy")
        ref_dense = reference.to_scipy_csr().toarray()
        for name in ("numpy", "graphblas", "dataframe", "python"):
            handle, _ = _run_kernel2(tmp_path_factory, u, v, name)
            assert np.allclose(handle.to_scipy_csr().toarray(), ref_dense), name


class TestKernel3Property:
    @settings(max_examples=20, deadline=None)
    @given(edges=edge_lists(max_edges=80))
    def test_rank_finite_nonnegative_bounded(self, tmp_path_factory, edges):
        u, v = edges
        handle, _ = _run_kernel2(tmp_path_factory, u, v)
        backend = get_backend("numpy")
        rank, _ = backend.kernel3(CONFIG, handle)
        assert np.isfinite(rank).all()
        assert (rank >= 0).all()
        assert rank.sum() <= 1.0 + 1e-9
