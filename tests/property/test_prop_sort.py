"""Property-based tests for the sorting substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sort.inmemory import (
    counting_sort_edges,
    numpy_sort_edges,
    radix_sort_edges,
)

N_MAX = 64


@st.composite
def edge_lists(draw, max_edges=300, num_vertices=N_MAX):
    m = draw(st.integers(min_value=0, max_value=max_edges))
    u = draw(
        st.lists(st.integers(0, num_vertices - 1), min_size=m, max_size=m)
    )
    v = draw(
        st.lists(st.integers(0, num_vertices - 1), min_size=m, max_size=m)
    )
    return np.array(u, dtype=np.int64), np.array(v, dtype=np.int64)


class TestSortProperties:
    @given(edges=edge_lists())
    def test_output_sorted_all_algorithms(self, edges):
        u, v = edges
        for sorted_u, _ in (
            numpy_sort_edges(u, v),
            counting_sort_edges(u, v, num_vertices=N_MAX),
            radix_sort_edges(u, v),
        ):
            assert np.all(np.diff(sorted_u) >= 0)

    @given(edges=edge_lists())
    def test_permutation_property(self, edges):
        u, v = edges
        key_before = np.sort(u * N_MAX + v)
        for sorted_u, sorted_v in (
            numpy_sort_edges(u, v),
            counting_sort_edges(u, v, num_vertices=N_MAX),
            radix_sort_edges(u, v),
        ):
            key_after = np.sort(sorted_u * N_MAX + sorted_v)
            assert np.array_equal(key_before, key_after)

    @given(edges=edge_lists())
    def test_algorithms_agree_exactly(self, edges):
        # All three sorts are stable, so full (u, v) streams must match.
        u, v = edges
        ref_u, ref_v = numpy_sort_edges(u, v)
        for sorted_u, sorted_v in (
            counting_sort_edges(u, v, num_vertices=N_MAX),
            radix_sort_edges(u, v),
        ):
            assert np.array_equal(sorted_u, ref_u)
            assert np.array_equal(sorted_v, ref_v)

    @given(edges=edge_lists())
    def test_idempotent(self, edges):
        u, v = edges
        once_u, once_v = numpy_sort_edges(u, v)
        twice_u, twice_v = numpy_sort_edges(once_u, once_v)
        assert np.array_equal(once_u, twice_u)
        assert np.array_equal(once_v, twice_v)

    @given(edges=edge_lists())
    def test_lexicographic_mode(self, edges):
        u, v = edges
        su, sv = numpy_sort_edges(u, v, by_end_vertex=True)
        keys = su * N_MAX + sv
        assert np.all(np.diff(keys) >= 0)


class TestExternalSortProperty:
    @settings(deadline=None, max_examples=25)
    @given(
        edges=edge_lists(max_edges=500),
        batch=st.integers(min_value=7, max_value=100),
        shards=st.integers(min_value=1, max_value=5),
    )
    def test_external_equals_in_memory(self, tmp_path_factory, edges, batch, shards):
        from repro.edgeio.dataset import EdgeDataset
        from repro.sort.external import ExternalSortConfig, external_sort_dataset

        u, v = edges
        base = tmp_path_factory.mktemp("prop-extsort")
        ds = EdgeDataset.write(base / "in", u, v, num_vertices=N_MAX,
                               num_shards=shards)
        out = external_sort_dataset(
            ds, base / "out",
            config=ExternalSortConfig(batch_edges=batch, fan_in=3,
                                      merge_block_edges=16),
        )
        su, sv = out.read_all()
        ref_u, _ = numpy_sort_edges(u, v)
        assert np.array_equal(su, ref_u)
        assert np.array_equal(np.sort(su * N_MAX + sv),
                              np.sort(u * N_MAX + v))
