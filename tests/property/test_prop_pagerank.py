"""Property-based tests for PageRank invariants."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import assume, given, settings, strategies as st

from repro.pagerank.benchmark import benchmark_pagerank
from repro.pagerank.dense import dense_power_iteration, google_matrix
from repro.pagerank.validate import validate_rank
from repro.pagerank.variants import (
    pagerank_sink,
    pagerank_strongly_preferential,
)

DIM = 10


@st.composite
def random_adjacency(draw, dim=DIM):
    """Random row-normalised adjacency with possible dangling rows."""
    density_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(density_seed)
    mask = rng.random((dim, dim)) < 0.35
    np.fill_diagonal(mask, False)
    counts = mask * rng.integers(1, 4, size=(dim, dim))
    dout = counts.sum(axis=1)
    normalised = np.divide(
        counts, np.where(dout[:, None] > 0, dout[:, None], 1.0),
        dtype=np.float64,
    )
    return sp.csr_matrix(normalised)


@st.composite
def initial_ranks(draw, dim=DIM):
    values = draw(
        st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=dim,
                 max_size=dim)
    )
    return np.array(values)


class TestBenchmarkKernelProperties:
    @settings(max_examples=40, deadline=None)
    @given(a=random_adjacency(), r0=initial_ranks())
    def test_rank_non_negative(self, a, r0):
        r = benchmark_pagerank(a, r0, iterations=10)
        assert (r >= 0).all()

    @settings(max_examples=40, deadline=None)
    @given(a=random_adjacency(), r0=initial_ranks())
    def test_mass_monotonically_non_increasing(self, a, r0):
        # Sub-stochastic matrix + teleport: within one run, total mass
        # decays monotonically from the unit-normalised start.
        sums = [
            benchmark_pagerank(a, r0, iterations=k).sum()
            for k in (1, 3, 6, 10)
        ]
        assert sums[0] <= 1.0 + 1e-12
        for earlier, later in zip(sums, sums[1:]):
            assert later <= earlier + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(a=random_adjacency(), r0=initial_ranks())
    def test_scale_invariance_of_initial_vector(self, a, r0):
        r1 = benchmark_pagerank(a, r0, iterations=8)
        r2 = benchmark_pagerank(a, 7.5 * r0, iterations=8)
        assert np.allclose(r1, r2, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(a=random_adjacency(), r0=initial_ranks())
    def test_long_run_forgets_initial_vector(self, a, r0):
        other = np.roll(r0, 3) + 0.1
        r1 = benchmark_pagerank(a, r0, iterations=300)
        r2 = benchmark_pagerank(a, other, iterations=300)
        n1 = r1 / np.abs(r1).sum()
        n2 = r2 / np.abs(r2).sum()
        assert np.allclose(n1, n2, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(a=random_adjacency())
    def test_converged_rank_passes_validation(self, a):
        r = benchmark_pagerank(a, np.full(DIM, 1.0 / DIM), iterations=400)
        assume(np.abs(r).sum() > 1e-12)
        report = validate_rank(a, r, tolerance=1e-4)
        assert report.passed

    @settings(max_examples=25, deadline=None)
    @given(a=random_adjacency())
    def test_matches_dense_google_matrix_iteration(self, a):
        g = google_matrix(a, 0.85)
        r0 = np.full(DIM, 1.0 / DIM)
        ours = benchmark_pagerank(a, r0, iterations=6)
        dense = r0.copy()
        for _ in range(6):
            dense = dense @ g
        assert np.allclose(ours, dense, atol=1e-10)


class TestVariantProperties:
    @settings(max_examples=30, deadline=None)
    @given(a=random_adjacency())
    def test_strongly_preferential_is_distribution(self, a):
        result = pagerank_strongly_preferential(a, tol=1e-12)
        assert result.converged
        assert np.isclose(result.rank.sum(), 1.0, atol=1e-8)
        assert (result.rank >= 0).all()

    @settings(max_examples=30, deadline=None)
    @given(a=random_adjacency())
    def test_sink_mass_bounded_by_one(self, a):
        result = pagerank_sink(a, tol=1e-12)
        assert result.rank.sum() <= 1.0 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(a=random_adjacency())
    def test_variants_agree_when_no_dangling(self, a):
        dout = np.asarray(a.sum(axis=1)).ravel()
        assume((dout > 0).all())  # no dangling rows
        strong = pagerank_strongly_preferential(a, tol=1e-13)
        sink = pagerank_sink(a, tol=1e-13)
        assert np.allclose(strong.rank, sink.rank, atol=1e-9)


class TestDenseOracleProperties:
    @settings(max_examples=25, deadline=None)
    @given(a=random_adjacency())
    def test_power_iteration_is_fixed_point(self, a):
        g = google_matrix(a, 0.85)
        vec, eigenvalue, _ = dense_power_iteration(g, tol=1e-14)
        assert np.allclose(vec @ g, eigenvalue * vec, atol=1e-8)
