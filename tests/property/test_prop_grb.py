"""Property-based tests for GraphBLAS-lite against scipy as the oracle."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.grb import Matrix, PLUS_TIMES, Vector, mxv, vxm

DIM = 12


@st.composite
def coo_triples(draw, max_entries=80, dim=DIM):
    m = draw(st.integers(min_value=0, max_value=max_entries))
    rows = draw(st.lists(st.integers(0, dim - 1), min_size=m, max_size=m))
    cols = draw(st.lists(st.integers(0, dim - 1), min_size=m, max_size=m))
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=m, max_size=m,
        )
    )
    return (
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals, dtype=np.float64),
    )


def _scipy_of(rows, cols, vals):
    return sp.coo_matrix((vals, (rows, cols)), shape=(DIM, DIM)).tocsr()


class TestBuildAgainstScipy:
    @given(triples=coo_triples())
    def test_dup_summing_matches_scipy(self, triples):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        theirs = _scipy_of(rows, cols, vals)
        assert np.allclose(ours.to_dense(), theirs.toarray())

    @given(triples=coo_triples())
    def test_entry_total_conserved(self, triples):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        assert np.isclose(ours.reduce_scalar(), vals.sum())

    @given(triples=coo_triples())
    def test_reductions_match_scipy(self, triples):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        theirs = _scipy_of(rows, cols, vals)
        assert np.allclose(ours.reduce_rows(),
                           np.asarray(theirs.sum(axis=1)).ravel())
        assert np.allclose(ours.reduce_columns(),
                           np.asarray(theirs.sum(axis=0)).ravel())

    @given(triples=coo_triples())
    def test_transpose_involution(self, triples):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        assert ours.transpose().transpose().isclose(ours.prune())


class TestProductsAgainstDense:
    @settings(max_examples=60)
    @given(
        triples=coo_triples(),
        x=st.lists(st.floats(-5, 5, allow_nan=False, allow_infinity=False),
                   min_size=DIM, max_size=DIM),
    )
    def test_vxm_matches_dense(self, triples, x):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        xv = np.array(x)
        got = vxm(Vector(xv), ours, PLUS_TIMES).to_dense()
        want = xv @ ours.to_dense()
        assert np.allclose(got, want, atol=1e-9)

    @settings(max_examples=60)
    @given(
        triples=coo_triples(),
        x=st.lists(st.floats(-5, 5, allow_nan=False, allow_infinity=False),
                   min_size=DIM, max_size=DIM),
    )
    def test_mxv_matches_dense(self, triples, x):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        xv = np.array(x)
        got = mxv(ours, Vector(xv), PLUS_TIMES).to_dense()
        want = ours.to_dense() @ xv
        assert np.allclose(got, want, atol=1e-9)

    @given(triples=coo_triples())
    def test_vxm_equals_mxv_of_transpose(self, triples):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        x = Vector(np.linspace(-1, 1, DIM))
        a = vxm(x, ours).to_dense()
        b = mxv(ours.transpose(), x).to_dense()
        assert np.allclose(a, b, atol=1e-9)


class TestMxmAgainstDense:
    @settings(max_examples=40, deadline=None)
    @given(a=coo_triples(max_entries=50), b=coo_triples(max_entries=50))
    def test_mxm_matches_dense_product(self, a, b):
        from repro.grb.mxm import mxm

        ma = Matrix.build(*a, nrows=DIM, ncols=DIM)
        mb = Matrix.build(*b, nrows=DIM, ncols=DIM)
        got = mxm(ma, mb).to_dense()
        want = ma.to_dense() @ mb.to_dense()
        assert np.allclose(got, want, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(triples=coo_triples(max_entries=50))
    def test_ewise_add_matches_dense_sum(self, triples):
        from repro.grb.mxm import ewise_add

        m = Matrix.build(*triples, nrows=DIM, ncols=DIM)
        t = m.transpose()
        got = ewise_add(m, t).to_dense()
        assert np.allclose(got, m.to_dense() + t.to_dense(), atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(a=coo_triples(max_entries=50), b=coo_triples(max_entries=50))
    def test_ewise_mult_matches_dense_hadamard(self, a, b):
        from repro.grb.mxm import ewise_mult

        ma = Matrix.build(*a, nrows=DIM, ncols=DIM)
        mb = Matrix.build(*b, nrows=DIM, ncols=DIM)
        got = ewise_mult(ma, mb).to_dense()
        # eWiseMult over the pattern intersection == dense Hadamard,
        # except where one side stores an explicit value and the other
        # stores nothing (dense also gives 0 there) — identical result.
        assert np.allclose(got, ma.to_dense() * mb.to_dense(), atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(a=coo_triples(max_entries=40), mask=coo_triples(max_entries=40))
    def test_mask_and_complement_partition(self, a, mask):
        from repro.grb.mxm import apply_mask, ewise_add

        ma = Matrix.build(*a, nrows=DIM, ncols=DIM)
        mm = Matrix.build(*mask, nrows=DIM, ncols=DIM)
        kept = apply_mask(ma, mm)
        dropped = apply_mask(ma, mm, complement=True)
        recombined = ewise_add(kept, dropped)
        assert np.allclose(recombined.to_dense(), ma.to_dense(), atol=1e-12)


class TestStructuralOps:
    @given(triples=coo_triples(), mask_seed=st.integers(0, 2**16))
    def test_clear_columns_removes_exactly_masked(self, triples, mask_seed):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        mask = np.random.default_rng(mask_seed).random(DIM) < 0.5
        cleared = ours.clear_columns(mask)
        dense = cleared.to_dense()
        assert np.all(dense[:, mask] == 0.0)
        unmasked = ~mask
        assert np.allclose(dense[:, unmasked], ours.to_dense()[:, unmasked])

    @given(triples=coo_triples())
    def test_scale_rows_linear(self, triples):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        factors = np.arange(1.0, DIM + 1.0)
        scaled = ours.scale_rows(factors)
        assert np.allclose(scaled.to_dense(), ours.to_dense() * factors[:, None])

    @given(triples=coo_triples())
    def test_prune_preserves_dense_form(self, triples):
        rows, cols, vals = triples
        ours = Matrix.build(rows, cols, vals, nrows=DIM, ncols=DIM)
        assert np.allclose(ours.prune().to_dense(), ours.to_dense())
