"""Property-based tests for the graph generators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.generators.kronecker import kronecker_blocks, kronecker_edges
from repro.generators.ppl import ppl_degree_sequence, ppl_edges
from repro.generators.simple import erdos_renyi_edges


class TestKroneckerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        scale=st.integers(min_value=2, max_value=9),
        edge_factor=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_size_and_bounds_always_hold(self, scale, edge_factor, seed):
        u, v = kronecker_edges(scale, edge_factor, seed=seed)
        n = 1 << scale
        assert len(u) == edge_factor * n
        assert u.min() >= 0 and u.max() < n
        assert v.min() >= 0 and v.max() < n

    @settings(max_examples=15, deadline=None)
    @given(
        scale=st.integers(min_value=3, max_value=8),
        block=st.integers(min_value=16, max_value=257),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_blocks_always_cover_m(self, scale, block, seed):
        blocks = list(kronecker_blocks(scale, 4, block_edges=block, seed=seed))
        n = 1 << scale
        total = sum(len(b[0]) for b in blocks)
        assert total == 4 * n
        for u, v in blocks:
            assert u.max(initial=0) < n and v.max(initial=0) < n


class TestPPLProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=2000),
        exponent=st.floats(min_value=1.2, max_value=3.0),
    )
    def test_degree_sequence_well_formed(self, n, exponent):
        seq = ppl_degree_sequence(n, exponent=exponent)
        assert len(seq) == n
        assert (seq >= 0).all()
        assert np.all(np.diff(seq.astype(np.int64)) <= 0)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=300),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_edges_match_declared_out_degrees(self, n, seed):
        seq = ppl_degree_sequence(n, exponent=1.7)
        u, v = ppl_edges(n, degrees=seq, seed=seed)
        assert np.array_equal(np.bincount(u, minlength=n), seq)
        # Stub pairing conserves total in-degree too.
        assert np.bincount(v, minlength=n).sum() == seq.sum()


class TestErdosRenyiProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=500),
        m=st.integers(min_value=0, max_value=2000),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_exact_edge_count_and_bounds(self, n, m, seed):
        u, v = erdos_renyi_edges(n, m, seed=seed)
        assert len(u) == m
        if m:
            assert u.max() < n and v.max() < n
