"""Property-based tests for the mini dataframe against numpy oracles."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.frame import Frame, read_tsv_frame, write_tsv_frame

values = st.integers(min_value=-1000, max_value=1000)


@st.composite
def frames(draw, max_rows=100):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    a = draw(st.lists(values, min_size=n, max_size=n))
    b = draw(st.lists(values, min_size=n, max_size=n))
    if n == 0:
        return Frame({"a": np.array([], dtype=np.int64),
                      "b": np.array([], dtype=np.int64)})
    return Frame({"a": np.array(a, dtype=np.int64),
                  "b": np.array(b, dtype=np.int64)})


class TestSortProperties:
    @given(f=frames())
    def test_sort_orders_key(self, f):
        out = f.sort_values("a")
        assert np.all(np.diff(out.column("a")) >= 0)

    @given(f=frames())
    def test_sort_is_permutation(self, f):
        out = f.sort_values("a")
        key = lambda fr: np.sort(fr.column("a") * 10007 + fr.column("b"))
        assert np.array_equal(key(f), key(out))

    @given(f=frames())
    def test_multi_key_sort_lexicographic(self, f):
        out = f.sort_values(["a", "b"])
        a = out.column("a")
        b = out.column("b")
        composite = a.astype(np.int64) * 4001 + b
        assert np.all(np.diff(composite) >= 0)


class TestGroupbyProperties:
    @given(f=frames())
    def test_groupby_size_total(self, f):
        out = f.groupby_size("a")
        assert out.column("size").sum() == f.num_rows or f.num_rows == 0

    @given(f=frames())
    def test_groupby_sum_matches_bincount(self, f):
        if f.num_rows == 0:
            return
        out = f.groupby_sum("a", "b")
        for key, total in zip(out.column("a"), out.column("b_sum")):
            mask = f.column("a") == key
            assert total == f.column("b")[mask].sum()

    @given(f=frames())
    def test_groupby_keys_unique_sorted(self, f):
        if f.num_rows == 0:
            return
        keys = f.groupby_size("a").column("a")
        assert np.array_equal(keys, np.unique(f.column("a")))


class TestFilterTakeProperties:
    @given(f=frames(), threshold=values)
    def test_filter_then_complement_partitions(self, f, threshold):
        mask = f.column("a") >= threshold
        kept = f.filter(mask)
        dropped = f.filter(~mask)
        assert kept.num_rows + dropped.num_rows == f.num_rows

    @given(f=frames())
    def test_concat_preserves_rows(self, f):
        assert f.concat(f).num_rows == 2 * f.num_rows


class TestIoRoundTrip:
    @settings(deadline=None, max_examples=30)
    @given(f=frames(max_rows=60))
    def test_tsv_round_trip(self, tmp_path_factory, f):
        path = tmp_path_factory.mktemp("prop-frame") / "f.tsv"
        write_tsv_frame(f, path)
        out = read_tsv_frame(path, names=["a", "b"])
        if f.num_rows == 0:
            assert out.num_rows == 0
        else:
            assert f.equals(out)
