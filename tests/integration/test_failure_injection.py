"""Failure injection: the pipeline must fail loudly, never silently.

Each test breaks one link of the chain — files, manifests, kernel
contracts — and asserts a specific, diagnosable error surfaces.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from broken_backends import BrokenK0 as _BrokenK0
from broken_backends import LossyK2 as _LossyK2
from broken_backends import NaNK3 as _NaNK3
from broken_backends import UnsortedK1 as _UnsortedK1

from repro.backends.base import Backend
from repro.backends.scipy_backend import ScipyBackend
from repro.core.config import PipelineConfig
from repro.core.exceptions import KernelContractError
from repro.core.pipeline import Pipeline
from repro.edgeio.dataset import EdgeDataset
from repro.edgeio.errors import CorruptEdgeFileError, DatasetLayoutError


class TestContractEnforcement:
    CONFIG = PipelineConfig(scale=6, seed=1)

    def test_k0_edge_count_violation(self):
        pipeline = Pipeline(self.CONFIG, backend=_BrokenK0())
        with pytest.raises(KernelContractError, match="spec requires"):
            pipeline.run()

    def test_k1_unsorted_output(self):
        pipeline = Pipeline(self.CONFIG, backend=_UnsortedK1())
        with pytest.raises(KernelContractError, match="not sorted"):
            pipeline.run()

    def test_k2_entry_sum_violation(self):
        pipeline = Pipeline(self.CONFIG, backend=_LossyK2())
        with pytest.raises(KernelContractError, match="sum"):
            pipeline.run()

    def test_k3_non_finite_rank(self):
        pipeline = Pipeline(self.CONFIG, backend=_NaNK3())
        with pytest.raises(KernelContractError, match="non-finite"):
            pipeline.run()

    def test_verify_false_does_not_hide_k3_shape_errors(self):
        # verify=False skips checks entirely — document that trade-off.
        pipeline = Pipeline(self.CONFIG, backend=_UnsortedK1())
        result = pipeline.run(verify=False)  # no error, caller opted out
        assert result.rank is not None


class TestCorruptFilesMidPipeline:
    def test_k2_rejects_corrupted_k1_output(self, tmp_path):
        config = PipelineConfig(scale=6, seed=1)
        backend = ScipyBackend()
        k0, _ = backend.kernel0(config, tmp_path / "k0")
        k1, _ = backend.kernel1(config, k0, tmp_path / "k1")
        shard = k1.shard_paths()[0]
        payload = shard.read_bytes()
        shard.write_bytes(payload[: len(payload) // 2] + b"garbage\t\t\n")
        with pytest.raises((CorruptEdgeFileError, DatasetLayoutError)):
            fresh = EdgeDataset.open(k1.directory)
            backend.kernel2(config, fresh)

    def test_deleted_shard_detected_at_open(self, tmp_path):
        config = PipelineConfig(scale=6, seed=1, num_files=3)
        backend = ScipyBackend()
        k0, _ = backend.kernel0(config, tmp_path / "k0")
        k0.shard_paths()[1].unlink()
        with pytest.raises(DatasetLayoutError, match="missing"):
            EdgeDataset.open(k0.directory)

    def test_manifest_tampering_detected(self, tmp_path):
        config = PipelineConfig(scale=6, seed=1)
        backend = ScipyBackend()
        k0, _ = backend.kernel0(config, tmp_path / "k0")
        manifest_path = tmp_path / "k0" / "manifest.json"
        manifest_path.write_text(manifest_path.read_text().replace(
            '"num_edges": 1024', '"num_edges": 999'
        ))
        reopened = EdgeDataset.open(tmp_path / "k0", verify=False)
        with pytest.raises(CorruptEdgeFileError, match="manifest says"):
            reopened.read_shard(0)


class TestDegenerateGraphs:
    @pytest.mark.parametrize("edges", [
        ([0, 1, 2], [0, 1, 2]),          # only self-loops
        ([0] * 10, [1] * 10),            # one repeated edge
        ([0, 1], [1, 0]),                # 2-cycle
    ])
    def test_kernel2_and_3_survive(self, tmp_path, edges):
        u, v = (np.array(edges[0], dtype=np.int64),
                np.array(edges[1], dtype=np.int64))
        ds = EdgeDataset.write(tmp_path / "d", u, v, num_vertices=4)
        config = PipelineConfig(scale=2, seed=1)
        backend = ScipyBackend()
        handle, _ = backend.kernel2(config, ds)
        rank, _ = backend.kernel3(config, handle)
        assert np.isfinite(rank).all()

    def test_empty_edge_list(self, tmp_path):
        empty = np.empty(0, dtype=np.int64)
        ds = EdgeDataset.write(tmp_path / "d", empty, empty, num_vertices=4)
        config = PipelineConfig(scale=2, seed=1)
        backend = ScipyBackend()
        handle, details = backend.kernel2(config, ds)
        assert handle.nnz == 0
        rank, _ = backend.kernel3(config, handle)
        # Pure teleport: uniform collapse.
        assert np.allclose(rank, rank[0])


class TestBadWorkspace:
    def test_unwritable_data_dir_raises_os_error(self, tmp_path):
        import os

        if os.geteuid() == 0:
            pytest.skip("root bypasses file permission bits")
        target = tmp_path / "readonly"
        target.mkdir()
        target.chmod(0o500)
        config = PipelineConfig(scale=6, seed=1, data_dir=target,
                                keep_files=True)
        try:
            with pytest.raises(PermissionError):
                Pipeline(config).run()
        finally:
            target.chmod(0o700)
