"""Streaming (out-of-core) Kernel 2 vs the in-memory implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.registry import get_backend
from repro.core.config import PipelineConfig
from repro.core.streaming import streaming_kernel2
from repro.edgeio.dataset import EdgeDataset
from repro.generators.kronecker import kronecker_edges


@pytest.fixture(scope="module")
def sorted_dataset(tmp_path_factory):
    u, v = kronecker_edges(9, 16, seed=17)
    base = tmp_path_factory.mktemp("streamk2")
    raw = EdgeDataset.write(base / "raw", u, v, num_vertices=512,
                            num_shards=4)
    config = PipelineConfig(scale=9, seed=17)
    backend = get_backend("scipy")
    k1, _ = backend.kernel1(config, raw, base / "k1")
    return k1


class TestStreamingMatchesInMemory:
    @pytest.mark.parametrize("batch_edges", [64, 500, 4096, 1 << 20])
    def test_identical_matrix_at_any_batch_size(self, sorted_dataset, batch_edges):
        config = PipelineConfig(scale=9, seed=17)
        reference, _ = get_backend("scipy").kernel2(config, sorted_dataset)
        result = streaming_kernel2(sorted_dataset, batch_edges=batch_edges)
        difference = abs(result.matrix - reference.to_scipy_csr())
        assert difference.nnz == 0 or difference.max() < 1e-15

    def test_entry_total_is_m(self, sorted_dataset):
        result = streaming_kernel2(sorted_dataset, batch_edges=300)
        assert result.pre_filter_entry_total == sorted_dataset.num_edges

    def test_batches_scale_with_budget(self, sorted_dataset):
        small = streaming_kernel2(sorted_dataset, batch_edges=128)
        large = streaming_kernel2(sorted_dataset, batch_edges=1 << 20)
        assert small.batches > large.batches
        # One input batch plus at most the carry-buffer flush.
        assert large.batches <= 2

    def test_eliminated_columns_match(self, sorted_dataset):
        config = PipelineConfig(scale=9, seed=17)
        _, details = get_backend("scipy").kernel2(config, sorted_dataset)
        result = streaming_kernel2(sorted_dataset, batch_edges=200)
        expected = details["supernode_columns"] + details["leaf_columns"]
        assert result.eliminated_columns == expected


class TestStreamingValidation:
    def test_rejects_unsorted_input(self, tmp_path):
        u = np.array([5, 1, 3], dtype=np.int64)
        v = np.array([0, 0, 0], dtype=np.int64)
        ds = EdgeDataset.write(tmp_path / "unsorted", u, v, num_vertices=8)
        with pytest.raises(ValueError, match="sorted"):
            streaming_kernel2(ds, batch_edges=2)

    def test_empty_dataset(self, tmp_path):
        empty = np.empty(0, dtype=np.int64)
        ds = EdgeDataset.write(tmp_path / "empty", empty, empty,
                               num_vertices=4)
        result = streaming_kernel2(ds)
        assert result.matrix.nnz == 0
        assert result.pre_filter_entry_total == 0.0

    def test_single_row_spanning_batches(self, tmp_path):
        # Every edge shares one start vertex: the carry buffer holds the
        # entire stream until the end.
        u = np.zeros(100, dtype=np.int64)
        v = np.tile(np.arange(10, dtype=np.int64), 10)
        ds = EdgeDataset.write(tmp_path / "onerow", u, v, num_vertices=16)
        result = streaming_kernel2(ds, batch_edges=7)
        assert result.pre_filter_entry_total == 100.0

    def test_scratch_cleanup(self, tmp_path, sorted_dataset):
        scratch = tmp_path / "scratch"
        streaming_kernel2(sorted_dataset, batch_edges=256,
                          scratch_dir=scratch)
        assert not (scratch / "dedup.bin").exists()

    def test_batch_validation(self, sorted_dataset):
        with pytest.raises(ValueError):
            streaming_kernel2(sorted_dataset, batch_edges=0)
