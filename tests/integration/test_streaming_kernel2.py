"""Streaming (out-of-core) Kernel 2 vs the in-memory implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.registry import get_backend
from repro.core.config import PipelineConfig
from repro.core.streaming import streaming_kernel2
from repro.edgeio.dataset import EdgeDataset
from repro.generators.kronecker import kronecker_edges


@pytest.fixture(scope="module")
def sorted_dataset(tmp_path_factory):
    u, v = kronecker_edges(9, 16, seed=17)
    base = tmp_path_factory.mktemp("streamk2")
    raw = EdgeDataset.write(base / "raw", u, v, num_vertices=512,
                            num_shards=4)
    config = PipelineConfig(scale=9, seed=17)
    backend = get_backend("scipy")
    k1, _ = backend.kernel1(config, raw, base / "k1")
    return k1


class TestStreamingMatchesInMemory:
    @pytest.mark.parametrize("batch_edges", [64, 500, 4096, 1 << 20])
    def test_identical_matrix_at_any_batch_size(self, sorted_dataset, batch_edges):
        config = PipelineConfig(scale=9, seed=17)
        reference, _ = get_backend("scipy").kernel2(config, sorted_dataset)
        result = streaming_kernel2(sorted_dataset, batch_edges=batch_edges)
        difference = abs(result.matrix - reference.to_scipy_csr())
        assert difference.nnz == 0 or difference.max() < 1e-15

    def test_entry_total_is_m(self, sorted_dataset):
        result = streaming_kernel2(sorted_dataset, batch_edges=300)
        assert result.pre_filter_entry_total == sorted_dataset.num_edges

    def test_batches_scale_with_budget(self, sorted_dataset):
        small = streaming_kernel2(sorted_dataset, batch_edges=128)
        large = streaming_kernel2(sorted_dataset, batch_edges=1 << 20)
        assert small.batches > large.batches
        # One input batch plus at most the carry-buffer flush.
        assert large.batches <= 2

    def test_eliminated_columns_match(self, sorted_dataset):
        config = PipelineConfig(scale=9, seed=17)
        _, details = get_backend("scipy").kernel2(config, sorted_dataset)
        result = streaming_kernel2(sorted_dataset, batch_edges=200)
        expected = details["supernode_columns"] + details["leaf_columns"]
        assert result.eliminated_columns == expected


class TestStreamingValidation:
    def test_rejects_unsorted_input(self, tmp_path):
        u = np.array([5, 1, 3], dtype=np.int64)
        v = np.array([0, 0, 0], dtype=np.int64)
        ds = EdgeDataset.write(tmp_path / "unsorted", u, v, num_vertices=8)
        with pytest.raises(ValueError, match="sorted"):
            streaming_kernel2(ds, batch_edges=2)

    def test_empty_dataset(self, tmp_path):
        empty = np.empty(0, dtype=np.int64)
        ds = EdgeDataset.write(tmp_path / "empty", empty, empty,
                               num_vertices=4)
        result = streaming_kernel2(ds)
        assert result.matrix.nnz == 0
        assert result.pre_filter_entry_total == 0.0

    def test_single_row_spanning_batches(self, tmp_path):
        # Every edge shares one start vertex: the carry buffer holds the
        # entire stream until the end.
        u = np.zeros(100, dtype=np.int64)
        v = np.tile(np.arange(10, dtype=np.int64), 10)
        ds = EdgeDataset.write(tmp_path / "onerow", u, v, num_vertices=16)
        result = streaming_kernel2(ds, batch_edges=7)
        assert result.pre_filter_entry_total == 100.0

    def test_scratch_cleanup(self, tmp_path, sorted_dataset):
        scratch = tmp_path / "scratch"
        streaming_kernel2(sorted_dataset, batch_edges=256,
                          scratch_dir=scratch)
        assert not (scratch / "dedup.bin").exists()

    def test_batch_validation(self, sorted_dataset):
        with pytest.raises(ValueError):
            streaming_kernel2(sorted_dataset, batch_edges=0)

    def test_source_without_vertex_count_rejected(self):
        with pytest.raises(ValueError, match="num_vertices"):
            streaming_kernel2(batch_source=iter([]))


class TestOverlappedPass1:
    """``overlap_io=True`` changes scheduling, never values."""

    def test_bit_identical_to_serial_pass1(self, sorted_dataset):
        serial = streaming_kernel2(sorted_dataset, batch_edges=500)
        overlapped = streaming_kernel2(sorted_dataset, batch_edges=500,
                                       overlap_io=True)
        np.testing.assert_array_equal(overlapped.matrix.indptr,
                                      serial.matrix.indptr)
        np.testing.assert_array_equal(overlapped.matrix.indices,
                                      serial.matrix.indices)
        np.testing.assert_array_equal(overlapped.matrix.data,
                                      serial.matrix.data)
        assert overlapped.unique_triples == serial.unique_triples
        assert overlapped.batches == serial.batches

    def test_io_overlap_reported_only_when_requested(self, sorted_dataset):
        assert streaming_kernel2(sorted_dataset).io_overlap is None
        io = streaming_kernel2(sorted_dataset, overlap_io=True).io_overlap
        assert io is not None
        for key in ("ingest_seconds", "compute_seconds", "spill_seconds",
                    "busy_seconds", "wall_seconds", "overlap_saved_seconds"):
            assert key in io
        assert io["wall_seconds"] > 0.0

    def test_external_batch_source_matches_dataset(self, sorted_dataset):
        u, v = sorted_dataset.read_all()

        def chunks(size):
            for start in range(0, len(u), size):
                yield u[start:start + size], v[start:start + size]

        reference = streaming_kernel2(sorted_dataset, batch_edges=700)
        # A source whose partition differs from the dataset's batching
        # must still produce the identical matrix (exact arithmetic).
        fed = streaming_kernel2(batch_source=chunks(311),
                                num_vertices=sorted_dataset.num_vertices,
                                batch_edges=700, overlap_io=True)
        np.testing.assert_array_equal(fed.matrix.indptr,
                                      reference.matrix.indptr)
        np.testing.assert_array_equal(fed.matrix.data, reference.matrix.data)
        assert fed.pre_filter_entry_total == reference.pre_filter_entry_total

    def test_overlapped_rejects_unsorted_input(self, tmp_path):
        u = np.array([5, 1, 3], dtype=np.int64)
        v = np.array([0, 0, 0], dtype=np.int64)
        ds = EdgeDataset.write(tmp_path / "unsorted2", u, v, num_vertices=8)
        with pytest.raises(ValueError, match="sorted"):
            streaming_kernel2(ds, batch_edges=2, overlap_io=True)

    @pytest.mark.parametrize("overlap_io", [False, True])
    def test_spill_failure_surfaces_without_deadlock(
        self, monkeypatch, sorted_dataset, overlap_io
    ):
        # A dying spill lane must propagate its error and unwind both
        # worker threads, not hang the join.
        from repro.core import streaming as streaming_mod

        class ExplodingBlock:
            def tofile(self, fh):
                raise OSError("disk full")

        monkeypatch.setattr(
            streaming_mod._Pass1State,
            "absorb",
            lambda self, rows, cols, counts: ExplodingBlock(),
        )
        with pytest.raises(OSError, match="disk full"):
            streaming_kernel2(sorted_dataset, batch_edges=128,
                              overlap_io=overlap_io)
