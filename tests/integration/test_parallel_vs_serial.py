"""Parallel pipeline vs serial backends: results must be identical."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.registry import get_backend
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset
from repro.generators.kronecker import kronecker_edges
from repro.parallel import run_parallel_pipeline


@pytest.fixture(scope="module")
def problem():
    scale, k = 8, 8
    n = 1 << scale
    u, v = kronecker_edges(scale, k, seed=21)
    return u, v, n


@pytest.fixture(scope="module")
def serial_rank(problem, tmp_path_factory):
    u, v, n = problem
    path = tmp_path_factory.mktemp("serial") / "edges"
    ds = EdgeDataset.write(path, u, v, num_vertices=n)
    config = PipelineConfig(scale=8, edge_factor=8, seed=21, iterations=12)
    backend = get_backend("numpy")
    handle, _ = backend.kernel2(config, ds)
    r0 = np.full(n, 1.0 / n)
    from repro.pagerank.benchmark import benchmark_pagerank

    return benchmark_pagerank(handle.to_scipy_csr(), r0, iterations=12)


@pytest.mark.parametrize("ranks", [1, 2, 3, 5, 8])
class TestSimExecutor:
    def test_matches_serial(self, problem, serial_rank, ranks):
        u, v, n = problem
        result = run_parallel_pipeline(
            u, v, n, num_ranks=ranks, iterations=12,
            initial_rank=np.full(n, 1.0 / n),
        )
        assert np.allclose(result.rank_vector, serial_rank, atol=1e-12)

    def test_traffic_scales_with_ranks(self, problem, serial_rank, ranks):
        u, v, n = problem
        result = run_parallel_pipeline(
            u, v, n, num_ranks=ranks, iterations=12,
            initial_rank=np.full(n, 1.0 / n),
        )
        if ranks == 1:
            assert result.traffic["bytes_by_op"].get("allreduce", 0) == 0
        else:
            # Naive allreduce: 2(p-1) * payload per call; 13 vector
            # allreduces (12 K3 + 1 K2) of 8n bytes + 1 scalar.
            expected = 2 * (ranks - 1) * (13 * 8 * n + 8)
            assert result.traffic["bytes_by_op"]["allreduce"] == expected


class TestMpExecutor:
    def test_two_processes_match_serial(self, problem, serial_rank):
        u, v, n = problem
        result = run_parallel_pipeline(
            u, v, n, num_ranks=2, iterations=12,
            initial_rank=np.full(n, 1.0 / n), executor="mp",
        )
        assert np.allclose(result.rank_vector, serial_rank, atol=1e-12)

    def test_rejects_unknown_executor(self, problem):
        u, v, n = problem
        with pytest.raises(ValueError, match="executor"):
            run_parallel_pipeline(u, v, n, executor="gpu")


class TestLoadBalance:
    def test_nnz_reported_per_rank(self, problem):
        u, v, n = problem
        result = run_parallel_pipeline(u, v, n, num_ranks=4, iterations=2)
        assert len(result.local_nnz) == 4
        assert sum(result.local_nnz) > 0
