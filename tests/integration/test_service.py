"""BenchmarkService: concurrent parity, dedup, durability, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import RunSpec, execute_spec, rank_sha256
from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.service import (
    BenchmarkService,
    JobCancelledError,
    JobFailedError,
    JobState,
    UnknownJobError,
    load_events,
)


class TestConcurrentParity:
    def test_eight_concurrent_jobs_bit_identical_to_direct_runs(self):
        """The acceptance bar: N concurrently submitted jobs produce
        rank vectors bit-identical to the same specs run directly."""
        specs = [
            RunSpec(scale=6, seed=seed, backend=backend)
            for seed in (1, 2, 3, 4)
            for backend in ("numpy", "scipy")
        ]
        assert len(specs) == 8
        with BenchmarkService(workers=4) as service:
            job_ids = [service.submit(spec) for spec in specs]
            outcomes = [service.result(job_id, timeout=120)
                        for job_id in job_ids]
        for spec, outcome in zip(specs, outcomes):
            direct = run_pipeline(spec.to_config())
            assert outcome.rank is not None
            assert np.array_equal(outcome.rank, direct.rank), spec
            assert outcome.rank_digest == rank_sha256(direct.rank)
            kernels = [record.kernel for record in outcome.records]
            assert kernels == ["k0-generate", "k1-sort", "k2-filter",
                               "k3-pagerank"]

    def test_service_matches_api_runner(self):
        spec = RunSpec(scale=6, seed=9, backend="numpy")
        with BenchmarkService(workers=2) as service:
            via_service = service.result(service.submit(spec))
        via_api = execute_spec(spec)
        assert via_service.rank_digest == via_api.rank_digest


class TestDeduplication:
    def test_inflight_duplicates_collapse_to_one_job(self, tmp_path):
        cache = tmp_path / "cache"
        store = tmp_path / "jobs.jsonl"
        spec = RunSpec(scale=8, backend="scipy")
        # One worker: the first submit occupies it, so duplicates are
        # deterministically still in flight when submitted.
        with BenchmarkService(
            workers=1, cache_dir=cache, store_path=store
        ) as service:
            first = service.submit(spec)
            dup_a = service.submit(spec)
            dup_b = service.submit(spec.with_overrides())  # equal spec
            assert first == dup_a == dup_b
            service.result(first, timeout=120)
        events = [e["event"] for e in load_events(store)]
        assert events.count("submitted") == 1
        assert events.count("deduplicated") == 2
        assert events.count("succeeded") == 1

    def test_resubmission_after_completion_hits_cache_once(self, tmp_path):
        """Duplicate specs hit the artifact cache exactly once: the
        first job populates it, the rerun reads it back as hits."""
        cache = tmp_path / "cache"
        spec = RunSpec(scale=6, backend="scipy")
        with BenchmarkService(workers=1, cache_dir=cache) as service:
            cold = service.result(service.submit(spec), timeout=120)
            warm = service.result(service.submit(spec), timeout=120)
        cold_by_kernel = {r.kernel: r for r in cold.records}
        assert not cold_by_kernel["k0-generate"].cached
        warm_by_kernel = {r.kernel: r for r in warm.records}
        assert warm_by_kernel["k0-generate"].cached
        assert warm_by_kernel["k1-sort"].cached
        assert warm.rank_digest == cold.rank_digest

    def test_dedup_can_be_disabled(self):
        spec = RunSpec(scale=6, backend="numpy")
        with BenchmarkService(workers=1, dedup=False) as service:
            a = service.submit(spec)
            b = service.submit(spec)
            assert a != b
            assert service.result(a).rank_digest == \
                service.result(b).rank_digest


class TestLifecycle:
    def test_status_and_jobs_views(self):
        with BenchmarkService(workers=1) as service:
            job_id = service.submit(RunSpec(scale=6, backend="numpy"))
            service.result(job_id, timeout=120)
            view = service.status(job_id)
            assert view["state"] == "succeeded"
            assert view["spec"]["scale"] == 6
            assert view["finished_at"] >= view["submitted_at"]
            assert [j["job_id"] for j in service.jobs()] == [job_id]

    def test_validation_failure_fails_the_job_with_verdict(self):
        # paper-body formula with heavy damping diverges from the
        # principal eigenvector: the pipeline runs, validation FAILs,
        # and the job must surface that — not report a bare success.
        spec = RunSpec(
            scale=6, iterations=2, damping=0.99, formula="paper-body",
            validation="full",
        )
        with BenchmarkService(workers=1) as service:
            job_id = service.submit(spec)
            with pytest.raises(JobFailedError, match="validation failed"):
                service.result(job_id, timeout=120)
            doc = service.result_doc(job_id)
            assert doc["state"] == "failed"
            assert doc["validation"][0]["passed"] is False
            assert doc["rank_sha256"]  # outcome retained for inspection

    def test_passing_validation_rides_along_in_result_doc(self):
        spec = RunSpec(scale=6, backend="numpy", validation="full")
        with BenchmarkService(workers=1) as service:
            service.result(service.submit(spec), timeout=120)
            doc = service.result_doc(service.jobs()[0]["job_id"])
            assert doc["validation"][0]["passed"] is True

    def test_store_event_order_submitted_before_running(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        with BenchmarkService(workers=2, store_path=store) as service:
            ids = [service.submit(RunSpec(scale=6, seed=s, backend="numpy"))
                   for s in range(1, 5)]
            for job_id in ids:
                service.result(job_id, timeout=120)
        seen_submitted = set()
        for event in load_events(store):
            if event["event"] == "submitted":
                seen_submitted.add(event["job_id"])
            else:
                assert event["job_id"] in seen_submitted, event

    def test_failed_job_reports_error(self):
        # graphblas backend cannot run the parallel strategy.
        spec = RunSpec(
            scale=6, backend="graphblas", execution="parallel",
        )
        with BenchmarkService(workers=1) as service:
            job_id = service.submit(spec)
            with pytest.raises(JobFailedError, match="parallel"):
                service.result(job_id, timeout=120)
            assert service.status(job_id)["state"] == "failed"

    def test_cancel_pending_job(self):
        blocker = RunSpec(scale=10, backend="scipy", repeats=2)
        victim = RunSpec(scale=6, seed=77, backend="numpy")
        with BenchmarkService(workers=1) as service:
            first = service.submit(blocker)
            job_id = service.submit(victim)
            assert service.cancel(job_id) is True
            assert service.status(job_id)["state"] == "cancelled"
            with pytest.raises(JobCancelledError):
                service.result(job_id)
            assert service.cancel(job_id) is False  # already terminal
            service.result(first, timeout=120)

    def test_unknown_job_id(self):
        with BenchmarkService(workers=1) as service:
            with pytest.raises(UnknownJobError):
                service.status("job-99999")

    def test_close_without_wait_cancels_queued_jobs(self):
        service = BenchmarkService(workers=1)
        running = service.submit(RunSpec(scale=10, backend="scipy"))
        queued = [service.submit(RunSpec(scale=6, seed=s, backend="numpy"))
                  for s in range(10, 16)]
        service.close(wait=False)
        states = {service.status(j)["state"] for j in queued}
        # Every queued job is either cancelled or slipped in before the
        # shutdown; none may be left pending forever.
        assert states <= {"cancelled", "succeeded", "running"}
        assert "cancelled" in states
        # The in-flight job is never interrupted mid-kernel.
        service.result(running, timeout=120)

    def test_closed_service_refuses_submission(self):
        service = BenchmarkService(workers=1)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(RunSpec(scale=6))

    def test_store_failure_fails_the_job_instead_of_stranding_it(self):
        """A store that starts raising mid-job (disk full, directory
        gone) must fail the job and wake waiters, never leave it
        RUNNING forever with its spec hash pinned in the dedup map."""
        spec = RunSpec(scale=6, seed=88, backend="numpy")
        with BenchmarkService(workers=1) as service:
            original_append = service.store.append

            def broken_append(event, payload):
                if event == "running":
                    raise OSError("no space left on device")
                original_append(event, payload)

            service.store.append = broken_append
            job_id = service.submit(spec)
            with pytest.raises(JobFailedError, match="no space left"):
                service.result(job_id, timeout=120)
            service.store.append = original_append
            # The dedup slot is released: the spec can run again.
            retry = service.submit(spec)
            assert retry != job_id
            service.result(retry, timeout=120)

    def test_submit_accepts_raw_documents(self):
        with BenchmarkService(workers=1) as service:
            job_id = service.submit({"scale": 6, "backend": "numpy"})
            assert service.result(job_id, timeout=120).rank is not None
            with pytest.raises(ValueError, match="unknown RunSpec field"):
                service.submit({"scale": 6, "bogus": 1})

    def test_terminal_states_enum(self):
        assert JobState.SUCCEEDED.terminal
        assert JobState.CANCELLED.terminal
        assert not JobState.RUNNING.terminal


class TestProcessWorkers:
    """worker_kind="process": same service surface, multi-core backing."""

    def test_process_job_digest_matches_thread_job(self, tmp_path):
        spec = RunSpec(scale=6, seed=3, backend="numpy")
        with BenchmarkService(workers=2, worker_kind="process") as service:
            doc = service.result(service.submit(spec), timeout=240)
        # Process workers return the stored result document (the rank
        # vector stays in the worker; its digest crosses the boundary).
        assert isinstance(doc, dict)
        assert doc["rank_sha256"] == execute_spec(spec).rank_digest
        kernels = [r["kernel"] for r in doc["records"]]
        assert kernels == ["k0-generate", "k1-sort", "k2-filter",
                           "k3-pagerank"]

    def test_process_failure_formats_like_thread_failure(self):
        spec = RunSpec(scale=6, backend="graphblas", execution="parallel")
        with BenchmarkService(workers=1, worker_kind="process") as service:
            job_id = service.submit(spec)
            with pytest.raises(JobFailedError, match="parallel"):
                service.result(job_id, timeout=240)
            error = service.status(job_id)["error"]
        assert error.startswith("ExecutorCapabilityError:")

    def test_process_validation_failure_carries_verdict(self):
        spec = RunSpec(
            scale=6, iterations=2, damping=0.99, formula="paper-body",
            validation="full",
        )
        with BenchmarkService(workers=1, worker_kind="process") as service:
            job_id = service.submit(spec)
            with pytest.raises(JobFailedError, match="validation failed"):
                service.result(job_id, timeout=240)
            doc = service.result_doc(job_id)
            assert doc["validation"][0]["passed"] is False
            assert doc["rank_sha256"]

    def test_process_worker_can_nest_mp_rank_processes(self):
        """A spec selecting parallel_executor="mp" spawns rank
        processes *inside* the worker — workers must not be daemonic,
        or this valid spec fails only on process pools."""
        spec = RunSpec(
            scale=6, backend="numpy", execution="parallel",
            parallel_ranks=2, parallel_executor="mp",
        )
        with BenchmarkService(workers=1, worker_kind="process") as service:
            doc = service.result(service.submit(spec), timeout=240)
        assert doc["rank_sha256"] == execute_spec(spec).rank_digest

    def test_process_jobs_share_the_artifact_cache(self, tmp_path):
        cache = tmp_path / "cache"
        spec = RunSpec(scale=6, backend="scipy")
        with BenchmarkService(
            workers=1, worker_kind="process", cache_dir=cache
        ) as service:
            cold = service.result(service.submit(spec), timeout=240)
            warm = service.result(service.submit(spec), timeout=240)
        cold_by_kernel = {r["kernel"]: r for r in cold["records"]}
        warm_by_kernel = {r["kernel"]: r for r in warm["records"]}
        assert not cold_by_kernel["k0-generate"]["cached"]
        assert warm_by_kernel["k0-generate"]["cached"]
        assert warm["rank_sha256"] == cold["rank_sha256"]

    def test_unknown_worker_kind(self):
        with pytest.raises(ValueError, match="worker_kind"):
            BenchmarkService(workers=1, worker_kind="fiber")


class TestDurableStore:
    def test_success_event_carries_records_and_digest(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        spec = RunSpec(scale=6, backend="numpy")
        with BenchmarkService(workers=1, store_path=store) as service:
            outcome = service.result(service.submit(spec), timeout=120)
        events = load_events(store)
        succeeded = [e for e in events if e["event"] == "succeeded"]
        assert len(succeeded) == 1
        doc = succeeded[0]
        assert doc["rank_sha256"] == outcome.rank_digest
        assert len(doc["records"]) == 4
        assert {r["kernel"] for r in doc["records"]} == {
            "k0-generate", "k1-sort", "k2-filter", "k3-pagerank"
        }
        assert doc["spec"]["scale"] == 6
