"""HTTP front end: submit over the wire, poll, fetch, cancel."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api import RunSpec, execute_spec
from repro.service import BenchmarkService, serve_in_thread


@pytest.fixture()
def served(tmp_path):
    """A live server on an ephemeral port; yields its base URL."""
    service = BenchmarkService(
        workers=2,
        cache_dir=tmp_path / "cache",
        store_path=tmp_path / "jobs.jsonl",
    )
    server, _thread = serve_in_thread(service, port=0)
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close(wait=False)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(url: str, doc):
    request = urllib.request.Request(
        url,
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _poll_terminal(base: str, job_id: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, doc = _get(f"{base}/jobs/{job_id}")
        if doc["state"] not in ("pending", "running"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestHTTPService:
    def test_healthz(self, served):
        status, doc = _get(f"{served}/healthz")
        assert status == 200
        assert doc["status"] == "ok"

    def test_scenarios_listing(self, served):
        status, doc = _get(f"{served}/scenarios")
        assert status == 200
        names = [s["name"] for s in doc["scenarios"]]
        assert "smoke" in names and "paper-s18" in names

    def test_submit_spec_poll_and_fetch_result(self, served):
        spec = RunSpec(scale=6, seed=5, backend="numpy")
        status, doc = _post(f"{served}/jobs", {"spec": spec.to_dict()})
        assert status == 202
        job_id = doc["job_id"]
        final = _poll_terminal(served, job_id)
        assert final["state"] == "succeeded"
        _, result = _get(f"{served}/jobs/{job_id}/result")
        assert len(result["records"]) == 4
        # Wire-level parity: the digest matches a direct in-process run.
        assert result["rank_sha256"] == execute_spec(spec).rank_digest

    def test_submit_scenario_with_overrides(self, served):
        status, doc = _post(
            f"{served}/jobs",
            {"scenario": "smoke", "overrides": {"seed": 11}},
        )
        assert status == 202
        assert doc["spec"]["seed"] == 11
        final = _poll_terminal(served, doc["job_id"])
        assert final["state"] == "succeeded"

    def test_result_of_inflight_job_is_409(self, served):
        _, doc = _post(f"{served}/jobs", {"spec": {"scale": 10}})
        job_id = doc["job_id"]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{served}/jobs/{job_id}/result", timeout=30
                )
            assert excinfo.value.code == 409
        finally:
            _poll_terminal(served, job_id)

    def test_bad_submissions_are_400(self, served):
        for body in (
            {"spec": {"scale": 6, "bogus": 1}},
            {"scenario": "no-such-scenario"},
            {"neither": True},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{served}/jobs", body)
            assert excinfo.value.code == 400

    def test_unknown_job_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{served}/jobs/job-99999", timeout=30)
        assert excinfo.value.code == 404

    def test_unknown_route_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{served}/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_jobs_listing(self, served):
        _, doc = _post(f"{served}/jobs", {"scenario": "smoke"})
        _poll_terminal(served, doc["job_id"])
        status, listing = _get(f"{served}/jobs")
        assert status == 200
        assert any(j["job_id"] == doc["job_id"] for j in listing["jobs"])


class TestHTTPSweeps:
    def test_submit_sweepspec_document(self, served):
        sweep = {
            "base": RunSpec(scale=6, backend="numpy").to_dict(),
            "scales": [6, 7],
            "backends": ["numpy"],
        }
        status, doc = _post(f"{served}/jobs", {"sweep": sweep})
        assert status == 202
        assert doc["kind"] == "sweep"
        assert [c["scale"] for c in doc["cells"]] == [6, 7]
        final = _poll_terminal(served, doc["job_id"], timeout=240)
        assert final["state"] == "succeeded"
        _, result = _get(f"{served}/jobs/{doc['job_id']}/result")
        assert len(result["records"]) == 8  # 2 cells x 4 kernels
        assert all(c["rank_sha256"] for c in result["cells"])

    def test_submit_scenario_with_sweep_grid(self, served):
        status, doc = _post(
            f"{served}/jobs",
            {"scenario": "smoke",
             "overrides": {"seed": 3},
             "sweep": {"scales": [6], "backends": ["numpy", "scipy"]}},
        )
        assert status == 202
        assert doc["sweep"]["base"]["seed"] == 3
        final = _poll_terminal(served, doc["job_id"], timeout=240)
        assert final["state"] == "succeeded"
        # An omitted axis inherits the scenario's own value.
        status, doc = _post(
            f"{served}/jobs",
            {"scenario": "smoke", "sweep": {"backends": ["scipy"]}},
        )
        assert status == 202
        assert doc["sweep"]["scales"] == [6]
        _poll_terminal(served, doc["job_id"], timeout=240)

    def test_scenario_repeats_default_into_grid(self, served):
        """A scenario's own repeats (cache-warm: best-of-3) becomes the
        sweep's per-cell repeat count instead of being silently reset."""
        status, doc = _post(
            f"{served}/jobs",
            {"scenario": "cache-warm",
             "sweep": {"scales": [6], "backends": ["numpy"]}},
        )
        assert status == 202
        assert doc["sweep"]["repeats"] == 3
        assert doc["sweep"]["base"]["repeats"] == 1
        final = _poll_terminal(served, doc["job_id"], timeout=240)
        assert final["state"] == "succeeded"

    def test_sweep_result_is_409_in_flight(self, served):
        _, doc = _post(
            f"{served}/jobs",
            {"scenario": "smoke", "sweep": {"scales": [6, 7, 8]}},
        )
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{served}/jobs/{doc['job_id']}/result", timeout=30
                )
            assert excinfo.value.code == 409
        finally:
            _poll_terminal(served, doc["job_id"], timeout=240)

    def test_bad_sweep_bodies_are_400(self, served):
        for body in (
            {"sweep": {"scales": [6]}},  # no base, no scenario
            {"sweep": []},  # not an object
            {"scenario": "smoke", "sweep": {"bogus": 1}},
            {"scenario": "smoke", "sweep": {"scales": []}},
            # repeats must ride in the sweep grid, not in overrides
            {"scenario": "smoke", "overrides": {"repeats": 3},
             "sweep": {"scales": [6]}},
            # overrides/spec next to a full SweepSpec doc would be
            # silently ignored — refused instead
            {"sweep": {"base": RunSpec(scale=6).to_dict(),
                       "scales": [6], "backends": ["numpy"]},
             "overrides": {"seed": 9}},
            {"scenario": "smoke", "sweep": {"scales": [6]},
             "spec": RunSpec(scale=6).to_dict()},
            # swept axes cannot come in as overrides either
            {"scenario": "smoke", "overrides": {"scale": 12},
             "sweep": {"scales": [6, 7]}},
            {"scenario": "smoke", "overrides": {"backend": "scipy"},
             "sweep": {"scales": [6], "backends": ["numpy"]}},
            # no backend in the grid supports the strategy
            {"sweep": {
                "base": RunSpec(
                    scale=6, execution="streaming"
                ).to_dict(),
                "scales": [6], "backends": ["python"],
            }},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{served}/jobs", body)
            assert excinfo.value.code == 400, body


class TestObservabilityEndpoints:
    """`/metrics`, `/jobs/<id>/trace`, and the extended `/healthz`."""

    def _get_text(self, url: str):
        with urllib.request.urlopen(url, timeout=30) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )

    def test_healthz_reports_queue_and_workers(self, served):
        status, doc = _get(f"{served}/healthz")
        assert status == 200
        assert doc["queue_depth"] == 0
        assert doc["workers"] == {}

    def test_metrics_before_any_job(self, served):
        status, content_type, text = self._get_text(f"{served}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "repro_queue_depth 0" in text
        assert "repro_workers_spawned_total 0" in text
        assert "# TYPE repro_kernel_seconds histogram" in text

    def test_metrics_accumulate_after_jobs(self, served):
        _, doc = _post(f"{served}/jobs", {"scenario": "smoke"})
        _poll_terminal(served, doc["job_id"])
        _, _, text = self._get_text(f"{served}/metrics")
        assert 'repro_jobs_finished_total{state="succeeded"} 1' in text
        assert 'repro_jobs{state="succeeded"} 1' in text
        # One smoke run = four kernels, each observed once.
        assert 'repro_kernel_seconds_count{kernel="k3-pagerank"} 1' in text
        assert 'le="+Inf"} 1' in text
        assert "repro_artifact_cache_probes_total" in text

    def test_trace_of_untraced_job_is_404(self, served):
        _, doc = _post(f"{served}/jobs", {"scenario": "smoke"})
        _poll_terminal(served, doc["job_id"])
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{served}/jobs/{doc['job_id']}/trace", timeout=30
            )
        assert excinfo.value.code == 404
        assert "trace" in excinfo.value.read().decode("utf-8")

    def test_trace_of_inflight_job_is_409(self, served):
        _, doc = _post(f"{served}/jobs", {"spec": {"scale": 10}})
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{served}/jobs/{doc['job_id']}/trace", timeout=30
                )
            assert excinfo.value.code == 409
        finally:
            _poll_terminal(served, doc["job_id"])

    def test_traced_job_serves_a_chrome_trace(self, served):
        _, doc = _post(
            f"{served}/jobs",
            {"scenario": "smoke", "overrides": {"trace": True}},
        )
        final = _poll_terminal(served, doc["job_id"])
        assert final["state"] == "succeeded"
        status, trace_doc = _get(f"{served}/jobs/{doc['job_id']}/trace")
        assert status == 200
        assert trace_doc["displayTimeUnit"] == "ms"
        complete = [
            e for e in trace_doc["traceEvents"] if e.get("ph") == "X"
        ]
        names = {e["name"] for e in complete}
        # Pipeline-side and service-side lifecycle spans on one axis.
        for required in (
            "pipeline", "stage:k0-generate", "stage:k1-sort",
            "stage:k2-filter", "stage:k3-pagerank",
            f"job:{doc['job_id']}", "job:queue", "job:dispatch",
            "job:run", "job:result",
        ):
            assert required in names, (required, sorted(names))
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        procs = {e["pid"] for e in complete}
        assert len(procs) >= 2  # pipeline "main" + "service" rows
