"""Distributed Kernel 0 and Kernel 1: full-parallel-pipeline closure.

With these, every kernel of the pipeline has a distributed form:
K0 (communication-free block generation), K1 (sample sort),
K2 (in-degree allreduce + elimination broadcast), K3 (spread allreduce).
This module checks K0's multiset equivalence with the serial generator
and K1's global ordering, then runs the complete distributed pipeline
K0 -> K1 -> K2 -> K3 against the serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators.kronecker import kronecker_blocks
from repro.parallel import (
    RowPartition,
    parallel_kernel0,
    parallel_kernel1,
    parallel_kernel2,
    parallel_kernel3,
    run_rank_programs,
)

SCALE = 7
EDGE_FACTOR = 8
N = 1 << SCALE
BLOCK = 64


def _serial_edges():
    blocks = list(kronecker_blocks(SCALE, EDGE_FACTOR, block_edges=BLOCK,
                                   seed=5))
    u = np.concatenate([b[0] for b in blocks])
    v = np.concatenate([b[1] for b in blocks])
    return u, v


class TestParallelKernel0:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_union_equals_serial_multiset(self, ranks):
        def program(comm):
            return parallel_kernel0(comm, SCALE, EDGE_FACTOR, seed=5,
                                    block_edges=BLOCK)

        shares = run_rank_programs(program, ranks)
        par_u = np.concatenate([s[0] for s in shares])
        par_v = np.concatenate([s[1] for s in shares])
        ser_u, ser_v = _serial_edges()
        assert np.array_equal(
            np.sort(par_u * N + par_v), np.sort(ser_u * N + ser_v)
        )

    def test_no_communication(self):
        from repro.parallel.traffic import TrafficLog

        traffic = TrafficLog()

        def program(comm):
            return parallel_kernel0(comm, SCALE, EDGE_FACTOR, seed=5,
                                    block_edges=BLOCK)

        run_rank_programs(program, 4, traffic=traffic)
        assert traffic.total_bytes == 0  # the paper's headline property


class TestParallelKernel1:
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_concatenated_blocks_globally_sorted(self, ranks):
        ser_u, ser_v = _serial_edges()

        def program(comm):
            partition = RowPartition(num_vertices=N, size=comm.size)
            per = len(ser_u) // comm.size
            start = comm.rank * per
            end = len(ser_u) if comm.rank == comm.size - 1 else start + per
            return parallel_kernel1(
                comm, partition, ser_u[start:end], ser_v[start:end]
            )

        blocks = run_rank_programs(program, ranks)
        cat_u = np.concatenate([b[0] for b in blocks])
        cat_v = np.concatenate([b[1] for b in blocks])
        assert np.all(np.diff(cat_u) >= 0)  # globally sorted
        assert np.array_equal(np.sort(cat_u), np.sort(ser_u))
        assert np.array_equal(
            np.sort(cat_u * N + cat_v), np.sort(ser_u * N + ser_v)
        )

    def test_each_rank_holds_its_range(self):
        ser_u, ser_v = _serial_edges()

        def program(comm):
            partition = RowPartition(num_vertices=N, size=comm.size)
            per = len(ser_u) // comm.size
            start = comm.rank * per
            end = len(ser_u) if comm.rank == comm.size - 1 else start + per
            u, v = parallel_kernel1(
                comm, partition, ser_u[start:end], ser_v[start:end]
            )
            lo, hi = partition.bounds(comm.rank)
            assert len(u) == 0 or (u.min() >= lo and u.max() < hi)
            return len(u)

        counts = run_rank_programs(program, 3)
        assert sum(counts) == len(ser_u)


class TestFullDistributedPipeline:
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_k0_through_k3_matches_serial(self, ranks):
        from repro.backends.base import Backend
        from repro.core.config import PipelineConfig
        from repro.pagerank.benchmark import benchmark_pagerank
        import scipy.sparse as sp

        config = PipelineConfig(scale=SCALE, edge_factor=EDGE_FACTOR,
                                seed=5, iterations=8)
        r0 = Backend.initial_rank(config)

        def program(comm):
            partition = RowPartition(num_vertices=N, size=comm.size)
            gen_u, gen_v = parallel_kernel0(
                comm, SCALE, EDGE_FACTOR, seed=5, block_edges=BLOCK
            )
            sorted_u, sorted_v = parallel_kernel1(comm, partition, gen_u, gen_v)
            matrix, _ = parallel_kernel2(comm, partition, sorted_u, sorted_v)
            return parallel_kernel3(comm, matrix, r0, iterations=8)

        ranks_out = run_rank_programs(program, ranks)

        # Serial reference over the same (block-generated) edge stream.
        ser_u, ser_v = _serial_edges()
        counts = sp.coo_matrix(
            (np.ones(len(ser_u)), (ser_u, ser_v)), shape=(N, N)
        ).tocsr()
        din = np.asarray(counts.sum(axis=0)).ravel()
        eliminate = (din == din.max()) | (din == 1)
        counts = (counts @ sp.diags((~eliminate).astype(float))).tocsr()
        counts.eliminate_zeros()
        dout = np.asarray(counts.sum(axis=1)).ravel()
        inv = np.where(dout > 0, 1.0 / np.where(dout > 0, dout, 1.0), 1.0)
        normalised = (sp.diags(inv) @ counts).tocsr()
        reference = benchmark_pagerank(normalised, r0, iterations=8)

        for rank_vector in ranks_out:
            assert np.allclose(rank_vector, reference, atol=1e-12)
