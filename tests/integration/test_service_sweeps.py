"""Sweep jobs through the service: fan-out, dedup, parity, recovery.

The acceptance bar for the sweep/worker-pool layer: a SweepSpec
submitted to a ``worker_kind="process"`` service (over HTTP) produces a
sweep table bit-identical — rank digests and per-cell records — to
``execute_sweep`` run directly, with duplicate cells deduplicated by
spec hash across the pool, and a service killed mid-sweep resumes from
its store and completes the remaining cells.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.api import (
    RunSpec,
    SweepSpec,
    execute_spec,
    execute_sweep,
    sweep_cells,
)
from repro.service import (
    BenchmarkService,
    JobFailedError,
    load_events,
    serve_in_thread,
)

BASE = RunSpec(scale=6, backend="numpy", validation="off")
SWEEP = SweepSpec(base=BASE, scales=(6, 7), backends=("numpy", "scipy"))


def _strip_timing(record):
    return {k: v for k, v in record.items()
            if k not in ("seconds", "edges_per_second")}


def _record_dicts(records):
    from dataclasses import asdict

    return [asdict(r) for r in records]


class TestSweepCells:
    def test_grid_order_matches_harness(self):
        cells = sweep_cells(SWEEP)
        assert [(backend, scale) for backend, scale, _spec in cells] == [
            ("numpy", 6), ("numpy", 7), ("scipy", 6), ("scipy", 7),
        ]
        assert all(spec is not None for _b, _s, spec in cells)

    def test_repeats_move_onto_cells(self):
        sweep = SweepSpec(base=BASE, scales=(6,), backends=("numpy",),
                          repeats=3)
        (_b, _s, spec), = sweep_cells(sweep)
        assert spec.repeats == 3

    def test_uncapable_backend_is_skipped(self):
        sweep = SweepSpec(
            base=BASE.with_overrides(execution="streaming"),
            scales=(6,), backends=("python", "scipy"),
        )
        cells = sweep_cells(sweep)
        assert cells[0][2] is None  # python lacks 'streaming'
        assert cells[1][2] is not None

    def test_no_capable_backend_raises(self):
        sweep = SweepSpec(
            base=BASE.with_overrides(execution="streaming"),
            scales=(6,), backends=("python",),
        )
        with pytest.raises(ValueError, match="streaming"):
            sweep_cells(sweep)


class TestSweepJobs:
    def test_sweep_table_matches_execute_sweep(self, tmp_path):
        with BenchmarkService(workers=4) as service:
            parent_id = service.submit_sweep(SWEEP)
            doc = service.result(parent_id, timeout=240)
        assert doc["state"] == "succeeded"
        direct = _record_dicts(execute_sweep(SWEEP))
        assert [_strip_timing(r) for r in doc["records"]] == \
            [_strip_timing(r) for r in direct]
        # Per-cell digests match a direct run of each cell spec.
        for cell, (_b, _s, spec) in zip(doc["cells"], sweep_cells(SWEEP)):
            assert cell["state"] == "succeeded"
            assert cell["rank_sha256"] == execute_spec(spec).rank_digest

    def test_parent_view_lists_cells(self):
        with BenchmarkService(workers=2) as service:
            parent_id = service.submit_sweep(SWEEP)
            view = service.status(parent_id)
            assert view["kind"] == "sweep"
            assert view["sweep"]["scales"] == [6, 7]
            assert len(view["cells"]) == 4
            assert all(c["job_id"] for c in view["cells"])
            service.result(parent_id, timeout=240)

    def test_duplicate_cells_dedupe_onto_one_child(self, tmp_path):
        store = tmp_path / "jobs.jsonl"
        sweep = SweepSpec(base=BASE, scales=(6, 6), backends=("numpy",))
        with BenchmarkService(workers=1, store_path=store) as service:
            parent_id = service.submit_sweep(sweep)
            doc = service.result(parent_id, timeout=240)
        cells = doc["cells"]
        assert cells[0]["job_id"] == cells[1]["job_id"]
        # The duplicate cell still contributes a row (the harness would
        # have run it twice; the pool ran it once).
        assert len(doc["records"]) == 8
        events = [e["event"] for e in load_events(store)]
        assert events.count("deduplicated") == 1

    def test_duplicate_sweeps_dedupe(self):
        with BenchmarkService(workers=1) as service:
            first = service.submit_sweep(SWEEP)
            second = service.submit_sweep(SWEEP)
            assert first == second
            service.result(first, timeout=240)

    def test_skipped_cells_recorded_not_failed(self):
        sweep = SweepSpec(
            base=BASE.with_overrides(execution="streaming"),
            scales=(6,), backends=("python", "scipy"),
        )
        with BenchmarkService(workers=2) as service:
            doc = service.result(service.submit_sweep(sweep), timeout=240)
        assert doc["state"] == "succeeded"
        by_backend = {c["backend"]: c for c in doc["cells"]}
        assert by_backend["python"]["state"] == "skipped"
        assert by_backend["scipy"]["state"] == "succeeded"
        assert {r["backend"] for r in doc["records"]} == {"scipy"}

    def test_failing_cell_fails_parent_with_roster(self):
        # A diverging configuration: the paper-body formula with heavy
        # damping FAILs the eigenvector cross-check, so the cell fails
        # and the parent must surface the roster of failed cells.
        sweep = SweepSpec(
            base=BASE.with_overrides(
                iterations=2, damping=0.99, formula="paper-body",
                validation="full",
            ),
            scales=(6,), backends=("numpy",),
        )
        with BenchmarkService(workers=1) as service:
            parent_id = service.submit_sweep(sweep)
            with pytest.raises(JobFailedError, match="sweep cells"):
                service.result(parent_id, timeout=240)
            doc = service.result_doc(parent_id)
            assert doc["state"] == "failed"
            assert doc["cells"][0]["state"] == "failed"
            assert "validation" in doc["cells"][0]["error"]


class TestProcessPoolSweepParity:
    def test_http_sweep_on_process_pool_bit_identical(self, tmp_path):
        """The PR's acceptance criterion, end to end: SweepSpec over
        HTTP onto a process pool == execute_sweep run directly."""
        service = BenchmarkService(
            workers=2, worker_kind="process",
            cache_dir=tmp_path / "cache",
            store_path=tmp_path / "jobs.jsonl",
        )
        server, _thread = serve_in_thread(service, port=0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            request = urllib.request.Request(
                f"{base}/jobs",
                data=json.dumps({"sweep": SWEEP.to_dict()}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                submitted = json.loads(response.read())
            assert submitted["kind"] == "sweep"
            parent_id = submitted["job_id"]
            deadline = time.monotonic() + 240
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{base}/jobs/{parent_id}", timeout=30
                ) as response:
                    status = json.loads(response.read())
                if status["state"] not in ("pending", "running"):
                    break
                time.sleep(0.1)
            assert status["state"] == "succeeded", status
            with urllib.request.urlopen(
                f"{base}/jobs/{parent_id}/result", timeout=30
            ) as response:
                doc = json.loads(response.read())
        finally:
            server.shutdown()
            server.server_close()
            service.close(wait=False)
        direct = _record_dicts(execute_sweep(SWEEP))
        assert [_strip_timing(r) for r in doc["records"]] == \
            [_strip_timing(r) for r in direct]
        for cell, (_b, _s, spec) in zip(doc["cells"], sweep_cells(SWEEP)):
            assert cell["rank_sha256"] == execute_spec(spec).rank_digest


class TestMidSweepRecovery:
    def test_restart_completes_remaining_cells(self, tmp_path):
        """Kill the service mid-sweep (simulated by erasing the tail of
        the store back to the crash point); a fresh service replays,
        re-runs only the unfinished cells, and completes the parent."""
        store = tmp_path / "jobs.jsonl"
        with BenchmarkService(workers=2, store_path=store) as service:
            parent_id = service.submit_sweep(SWEEP)
            reference = service.result(parent_id, timeout=240)
        events = load_events(store)
        finished = [e for e in events if e["event"] == "succeeded"]
        assert len(finished) == 5  # 4 cells + the parent
        # Crash point: the last two cells and the parent never finished.
        survivors = {e["job_id"] for e in finished[:2]}
        crashed_line = json.dumps(finished[2], sort_keys=True)
        text = store.read_text(encoding="utf-8")
        store.write_text(
            text[: text.index(crashed_line)], encoding="utf-8"
        )
        remaining = load_events(store)
        assert [e for e in remaining if e["event"] == "succeeded"] == \
            finished[:2]
        with BenchmarkService(workers=2, store_path=store) as revived:
            doc = revived.result(parent_id, timeout=240)
            assert doc["state"] == "succeeded"
            # Finished cells were restored, not re-run; the rest were
            # requeued exactly once each.
            events = load_events(store)
            requeued = {e["job_id"] for e in events
                        if e["event"] == "requeued"}
            assert requeued, "expected unfinished cells to requeue"
            assert not (requeued & survivors)
        assert [c["rank_sha256"] for c in doc["cells"]] == \
            [c["rank_sha256"] for c in reference["cells"]]
        assert [_strip_timing(r) for r in doc["records"]] == \
            [_strip_timing(r) for r in reference["records"]]

    def test_graceful_shutdown_mid_sweep_resumes_on_restart(self, tmp_path):
        """^C mid-sweep (process workers): the in-flight cell is FAILED
        in the store (no zombie RUNNING entry), the parent is left open,
        and a restarted service retries the killed cell and completes
        the sweep."""
        import time as _time

        store = tmp_path / "jobs.jsonl"
        sweep = SweepSpec(
            base=RunSpec(scale=11, backend="scipy", validation="off"),
            scales=(11, 12), backends=("numpy", "scipy"),
        )
        service = BenchmarkService(
            workers=1, worker_kind="process", store_path=store
        )
        parent_id = service.submit_sweep(sweep)
        deadline = _time.monotonic() + 120
        while _time.monotonic() < deadline:
            states = {j["job_id"]: j["state"] for j in service.jobs()}
            if "running" in states.values():
                break
            _time.sleep(0.02)
        service.close(wait=False)
        events = load_events(store)
        by_job = {}
        for event in events:
            by_job.setdefault(event.get("job_id"), []).append(event["event"])
        # The parent has no terminal event — the sweep stays resumable.
        assert not set(by_job[parent_id]) & \
            {"succeeded", "failed", "cancelled"}
        # No job is left durably RUNNING without a terminal event
        # unless it never produced a failure record (queued ones), and
        # any in-flight cell at the kill is recorded failed.
        failed = [e for e in events if e["event"] == "failed"]
        for event in failed:
            assert event["error"].startswith("WorkerCrashError")
        with BenchmarkService(workers=2, store_path=store) as revived:
            doc = revived.result(parent_id, timeout=240)
        assert doc["state"] == "succeeded"
        assert all(c["state"] == "succeeded" for c in doc["cells"])
        for cell, (_b, _s, spec) in zip(doc["cells"], sweep_cells(sweep)):
            assert cell["rank_sha256"] == execute_spec(spec).rank_digest

    def test_replayed_sweep_view_keeps_reference_shape(self, tmp_path):
        """A replayed terminal parent's status() lists cell references
        only — the table stays in the result payload, same as live."""
        store = tmp_path / "jobs.jsonl"
        with BenchmarkService(workers=2, store_path=store) as service:
            parent_id = service.submit_sweep(SWEEP)
            service.result(parent_id, timeout=240)
            live_view = service.status(parent_id)
        with BenchmarkService(workers=1, store_path=store) as replayed:
            view = replayed.status(parent_id)
            assert sorted(view["cells"][0]) == sorted(live_view["cells"][0])
            assert "records" not in view["cells"][0]
            doc = replayed.result_doc(parent_id)
            # Records live once, in the flattened grid-ordered table;
            # cell docs carry state + digest references only.
            assert len(doc["records"]) == 16
            assert "records" not in doc["cells"][0]
            assert doc["cells"][0]["rank_sha256"]

    def test_worker_crash_failed_cells_and_parent_reopen(self, tmp_path):
        """Cells durably FAILED by a worker kill (WorkerCrashError) are
        retried on replay, and a parent that failed only because of
        them is reopened and completes."""
        store = tmp_path / "jobs.jsonl"
        with BenchmarkService(workers=2, store_path=store) as service:
            parent_id = service.submit_sweep(SWEEP)
            reference = service.result(parent_id, timeout=240)
        events = load_events(store)
        crashed_cell = next(
            e["job_id"] for e in events
            if e["event"] == "succeeded" and e["job_id"] != parent_id
        )
        rewritten = []
        for event in events:
            if event["event"] == "succeeded" and \
                    event["job_id"] == crashed_cell:
                rewritten.append({
                    "event": "failed", "time": event["time"],
                    "job_id": crashed_cell,
                    "error": "WorkerCrashError: worker repro-worker-0 "
                             "(pid 1) died mid-job: EOFError",
                })
            elif event["event"] == "succeeded" and \
                    event["job_id"] == parent_id:
                rewritten.append({
                    "event": "failed", "time": event["time"],
                    "job_id": parent_id,
                    "error": "1 of 4 sweep cells did not succeed",
                })
            else:
                rewritten.append(event)
        store.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n"
                    for e in rewritten),
            encoding="utf-8",
        )
        with BenchmarkService(workers=2, store_path=store) as revived:
            doc = revived.result(parent_id, timeout=240)
        assert doc["state"] == "succeeded"
        assert [c["rank_sha256"] for c in doc["cells"]] == \
            [c["rank_sha256"] for c in reference["cells"]]
        events = [e["event"] for e in load_events(store)]
        assert events.count("requeued") == 1

    def test_stale_failed_parent_with_succeeded_cells_reopens(
        self, tmp_path
    ):
        """A crash can land after the last cell's succeeded event but
        before the parent's — replay must not trust the stale parent
        failure when every cell in fact succeeded."""
        store = tmp_path / "jobs.jsonl"
        with BenchmarkService(workers=2, store_path=store) as service:
            parent_id = service.submit_sweep(SWEEP)
            reference = service.result(parent_id, timeout=240)
        rewritten = []
        for event in load_events(store):
            if event["event"] == "succeeded" and \
                    event["job_id"] == parent_id:
                rewritten.append({
                    "event": "failed", "time": event["time"],
                    "job_id": parent_id,
                    "error": "1 of 4 sweep cells did not succeed: "
                             "numpy/s6 (failed)",
                })
            else:
                rewritten.append(event)
        store.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n"
                    for e in rewritten),
            encoding="utf-8",
        )
        with BenchmarkService(workers=2, store_path=store) as revived:
            doc = revived.result(parent_id, timeout=240)
        assert doc["state"] == "succeeded"
        assert [c["rank_sha256"] for c in doc["cells"]] == \
            [c["rank_sha256"] for c in reference["cells"]]
        # No cell re-ran: the reopen re-finalized from logged results.
        events = [e["event"] for e in load_events(store)]
        assert "requeued" not in events

    def test_crash_mid_lowering_relowers(self, tmp_path):
        """A store holding sweep-submitted but no sweep-cells (the
        crash hit during fan-out) re-lowers the grid on replay."""
        store = tmp_path / "jobs.jsonl"
        with BenchmarkService(workers=2, store_path=store) as service:
            parent_id = service.submit_sweep(SWEEP)
            service.result(parent_id, timeout=240)
        kept = [
            e for e in load_events(store)
            if e["event"] in ("sweep-submitted",)
            or (e["event"] == "submitted"
                and e["job_id"] != parent_id)
        ]
        # Keep only the submissions; every cell and the parent are
        # mid-flight, and the parent never recorded its cells.
        store.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n"
                    for e in kept),
            encoding="utf-8",
        )
        with BenchmarkService(workers=2, store_path=store) as revived:
            doc = revived.result(parent_id, timeout=240)
            assert doc["state"] == "succeeded"
            assert len(doc["cells"]) == 4
            assert all(c["state"] == "succeeded" for c in doc["cells"])
