"""The distributed worker plane end-to-end: a remote-kind service with
real TCP agents, cross-host artifact sync, requeue on worker death, and
observability parity.

Most tests embed agents as threads (the TCP stack is real; only the
process boundary is elided).  The SIGKILL scenario uses real
``repro-pipeline worker`` subprocesses — the exact CI remote-leg
topology — because killing a thread cannot model a dying host.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.api import RunSpec, execute_spec
from repro.core.artifacts import ArtifactCache, cache_key, k0_cache_fields
from repro.service import BenchmarkService, WorkerAgent, serve_in_thread
from repro.service.jobs import load_events

_SRC = str(Path(repro.__file__).resolve().parents[1])

SPEC = RunSpec(scale=6, backend="numpy", cache_policy="shared")


def _child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(url: str, doc):
    request = urllib.request.Request(
        url,
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _poll_terminal(base: str, job_id: str, timeout: float = 180.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, doc = _get(f"{base}/jobs/{job_id}")
        if doc["state"] not in ("pending", "running"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class _RemoteRig:
    """A remote-kind service + HTTP front end + N thread-hosted agents."""

    def __init__(self, tmp_path, *, agents=2, heartbeat_timeout=10.0,
                 agent_kwargs=None, shared_agent_cache=False):
        self.service = BenchmarkService(
            workers=agents,
            worker_kind="remote",
            cache_dir=tmp_path / "svc-cache",
            store_path=tmp_path / "jobs.jsonl",
            worker_listen=("127.0.0.1", 0),
            heartbeat_timeout=heartbeat_timeout,
        )
        self.server, _ = serve_in_thread(self.service, port=0)
        host, port = self.server.server_address[:2]
        self.base = f"http://{host}:{port}"
        self.service.set_artifact_base(self.base)
        whost, wport = self.service.worker_address
        self.agents = []
        self.threads = []
        for index in range(agents):
            cache = (
                tmp_path / "agent-cache"
                if shared_agent_cache
                else tmp_path / f"agent-cache-{index}"
            )
            agent = WorkerAgent(
                whost, wport,
                cache_dir=cache,
                worker_id=f"agent-{index}",
                quiet=True,
                reconnect_delay=0.1,
                **(agent_kwargs or {}),
            )
            thread = threading.Thread(target=agent.run, daemon=True)
            thread.start()
            self.agents.append(agent)
            self.threads.append(thread)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if self.service._workers.stats()["workers_connected"] == agents:
                break
            time.sleep(0.02)

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.close(wait=False)
        for thread in self.threads:
            thread.join(timeout=5)


@pytest.fixture()
def rig(tmp_path):
    rig = _RemoteRig(tmp_path)
    yield rig
    rig.close()


class TestRemoteParity:
    def test_run_digest_matches_inprocess_execution(self, rig):
        status, doc = _post(f"{rig.base}/jobs", {"spec": SPEC.to_dict()})
        assert status == 202
        final = _poll_terminal(rig.base, doc["job_id"])
        assert final["state"] == "succeeded", final["error"]
        _, result = _get(f"{rig.base}/jobs/{doc['job_id']}/result")
        assert result["rank_sha256"] == execute_spec(SPEC).rank_digest
        assert result["remote"]["transport"] == "tcp"
        assert result["remote"]["worker_id"].startswith("agent-")

    def test_sweep_digests_bit_identical_to_thread_kind(self, rig, tmp_path):
        """The acceptance bar: one sweep fanned across two TCP agents
        produces exactly the rank digests a thread-kind service does."""
        sweep = {
            "base": SPEC.to_dict(),
            "scales": [6, 7],
            "backends": ["numpy", "python"],
        }
        _, doc = _post(f"{rig.base}/jobs", {"sweep": sweep})
        final = _poll_terminal(rig.base, doc["job_id"], timeout=300)
        assert final["state"] == "succeeded", final["error"]
        _, remote_result = _get(f"{rig.base}/jobs/{doc['job_id']}/result")

        local = BenchmarkService(
            workers=2, worker_kind="thread",
            cache_dir=tmp_path / "thread-cache",
        )
        try:
            from repro.api import SweepSpec

            job_id = local.submit_sweep(SweepSpec.from_dict(sweep))
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                if local.status(job_id)["state"] not in (
                    "pending", "running"
                ):
                    break
                time.sleep(0.05)
            assert local.status(job_id)["state"] == "succeeded"
            local_result = local.result_doc(job_id)
        finally:
            local.close()

        def digests(result):
            return {
                (c["backend"], c["scale"]): c["rank_sha256"]
                for c in result["cells"]
            }

        assert digests(remote_result) == digests(local_result)
        # Every cell's child job carries remote provenance (the cells
        # really ran on TCP agents, not some local fallback).
        workers = set()
        for cell in remote_result["cells"]:
            _, child = _get(f"{rig.base}/jobs/{cell['job_id']}/result")
            workers.add(child["remote"]["worker_id"])
        assert workers <= {"agent-0", "agent-1"} and workers

    def test_traced_remote_job_grafts_worker_spans(self, rig):
        spec = SPEC.with_overrides(trace=True)
        _, doc = _post(f"{rig.base}/jobs", {"spec": spec.to_dict()})
        final = _poll_terminal(rig.base, doc["job_id"])
        assert final["state"] == "succeeded", final["error"]
        _, trace_doc = _get(f"{rig.base}/jobs/{doc['job_id']}/trace")
        names = {
            e["name"] for e in trace_doc["traceEvents"]
            if e.get("ph") == "X"
        }
        assert "worker:job" in names
        assert any(n.startswith("job:remote-dispatch:") for n in names)


class TestArtifactSync:
    def test_warm_entries_cross_the_host_boundary(self, tmp_path):
        """Agent 0 runs cold, pushes K0/K1 to the service; agent 1 —
        with its own empty cache root — fetches them instead of
        regenerating, and /metrics records the transfers."""
        rig = _RemoteRig(tmp_path, agents=1)
        try:
            _, doc = _post(f"{rig.base}/jobs", {"spec": SPEC.to_dict()})
            final = _poll_terminal(rig.base, doc["job_id"])
            assert final["state"] == "succeeded", final["error"]
            _, result = _get(f"{rig.base}/jobs/{doc['job_id']}/result")
            sync = result["artifact_sync"]
            assert set(sync["pushed"]) and not sync["fetched"]

            # A second worker on a "different host": fresh cache root.
            whost, wport = rig.service.worker_address
            agent2 = WorkerAgent(
                whost, wport, cache_dir=tmp_path / "host2-cache",
                worker_id="host2", quiet=True,
            )
            t2 = threading.Thread(target=agent2.run, daemon=True)
            t2.start()
            # Stop agent 0 so the dispatch can only go to host2.
            rig.agents[0].stop()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                view = rig.service._workers.workers_view()
                if [r["worker"] for r in view] == ["host2"]:
                    break
                time.sleep(0.02)
            spec2 = SPEC.with_overrides(iterations=21)  # same K0/K1 keys
            _, doc2 = _post(f"{rig.base}/jobs", {"spec": spec2.to_dict()})
            final2 = _poll_terminal(rig.base, doc2["job_id"])
            assert final2["state"] == "succeeded", final2["error"]
            _, result2 = _get(f"{rig.base}/jobs/{doc2['job_id']}/result")
            sync2 = result2["artifact_sync"]
            assert set(sync2["fetched"]) == set(sync["pushed"])
            assert not sync2["pushed"]  # nothing new to publish

            with urllib.request.urlopen(
                f"{rig.base}/metrics", timeout=30
            ) as response:
                text = response.read().decode("utf-8")
            assert (
                'repro_artifact_sync_total{op="put",outcome="stored"} 2'
                in text
            )
            hits = [
                line for line in text.splitlines()
                if line.startswith(
                    'repro_artifact_sync_total{op="get",outcome="hit"}'
                )
            ]
            assert hits and int(hits[0].rsplit(" ", 1)[1]) == 2
            t2.join(timeout=1)  # still serving; just probe liveness
        finally:
            rig.close()

    def test_export_import_round_trip_and_safety(self, tmp_path):
        """The tar transplant primitive underneath GET/PUT /artifacts."""
        config = SPEC.to_config(None)
        cache_a = ArtifactCache(tmp_path / "a")
        key = cache_key(k0_cache_fields(config))
        entry = cache_a.entry_dir("k0", key)
        entry.mkdir(parents=True)
        (entry / "edges.tsv").write_text("1\t2\n")
        (entry / "manifest.json").write_text(
            json.dumps({"schema": 1, "shards": []})
        )
        data = cache_a.export_entry("k0", key)
        assert data is not None

        cache_b = ArtifactCache(tmp_path / "b")
        assert cache_b.import_entry("k0", key, data)
        entry = cache_b.entry_dir("k0", key)
        assert (entry / "edges.tsv").read_text() == "1\t2\n"
        # Re-import of a warm entry is a cheap success (rename race).
        assert cache_b.import_entry("k0", key, data)

        # Unsafe archives are refused: absolute and traversal members,
        # and archives with no manifest.
        import io
        import tarfile

        def tar_of(members):
            buf = io.BytesIO()
            with tarfile.open(fileobj=buf, mode="w") as archive:
                for name, payload in members:
                    info = tarfile.TarInfo(name)
                    info.size = len(payload)
                    archive.addfile(info, io.BytesIO(payload))
            return buf.getvalue()

        bad_key = "f" * len(key)
        assert not cache_b.import_entry(
            "k0", bad_key, tar_of([("../escape.txt", b"x")])
        )
        assert not cache_b.import_entry(
            "k0", bad_key, tar_of([("/abs.txt", b"x")])
        )
        assert not cache_b.import_entry(
            "k0", bad_key, tar_of([("data.txt", b"x")])  # no manifest
        )
        assert not cache_b.import_entry("k0", bad_key, b"not a tar")
        assert cache_b.export_entry("k0", bad_key) is None

    def test_artifact_endpoints_over_http(self, rig):
        _, doc = _post(f"{rig.base}/jobs", {"spec": SPEC.to_dict()})
        _poll_terminal(rig.base, doc["job_id"])
        status, index = _get(f"{rig.base}/artifacts")
        assert status == 200
        kinds = {e["kind"] for e in index["entries"]}
        assert {"k0", "k1"} <= kinds
        entry = index["entries"][0]
        url = f"{rig.base}/artifacts/{entry['kind']}/{entry['key']}"
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-tar"
            assert len(response.read()) > 0

    def test_bad_artifact_requests_are_4xx(self, rig):
        import urllib.error

        for path, code in (
            ("/artifacts/k9/abcdef", 400),   # unknown kind
            ("/artifacts/k0/NOT-HEX", 400),  # non-hex key
            ("/artifacts/k0/" + "0" * 24, 404),  # well-formed miss
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{rig.base}{path}", timeout=30)
            assert excinfo.value.code == code, path


class TestObservability:
    def test_healthz_reports_per_worker_rows(self, rig):
        status, doc = _get(f"{rig.base}/healthz")
        assert status == 200
        assert doc["worker_kind"] == "remote"
        assert doc["worker_transport"] == "tcp"
        assert doc["workers_connected"] == 2
        assert doc["worker_listen"] == list(rig.service.worker_address)
        assert set(doc["workers"]) == {"agent-0", "agent-1"}
        for row in doc["workers"].values():
            assert row["kind"] == "remote"
            assert row["transport"] == "tcp"
            assert isinstance(row["heartbeat_age_s"], (int, float))
            assert row["job_id"] is None  # idle

    def test_metrics_report_worker_info_and_churn(self, rig):
        with urllib.request.urlopen(
            f"{rig.base}/metrics", timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        assert "repro_remote_workers_connected 2" in text
        assert 'repro_worker_info{worker="agent-0",kind="remote",' in text
        assert 'repro_worker_heartbeat_age_seconds{worker="agent-0"}' in text
        assert "repro_remote_registrations_rejected_total 0" in text
        assert "repro_jobs_requeued_total 0" in text

    def test_local_kind_healthz_unchanged(self, tmp_path):
        """Thread-kind services keep the pre-remote /healthz shape: no
        remote-only fields, idle workers report {} (compat contract)."""
        service = BenchmarkService(workers=1, worker_kind="thread")
        server, _ = serve_in_thread(service, port=0)
        try:
            host, port = server.server_address[:2]
            _, doc = _get(f"http://{host}:{port}/healthz")
            assert doc["workers"] == {}
            assert "workers_connected" not in doc
            assert "worker_listen" not in doc
            assert doc["worker_transport"] == "inline"
        finally:
            server.shutdown()
            server.server_close()
            service.close(wait=False)


class TestRequeue:
    def test_remote_worker_death_requeues_and_completes(self, tmp_path):
        """Kill the serving agent mid-job: the job requeues onto the
        surviving agent, completes with the right digest, and the store
        carries a `requeued` event naming the crash."""
        rig = _RemoteRig(
            tmp_path, agents=2, heartbeat_timeout=5.0,
        )
        try:
            # Slow down only agent 0's jobs so we know who is serving.
            rig.agents[0].job_delay = 5.0
            # Stop agent 1 so the dispatch lands on agent 0 first.
            rig.agents[1].stop()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                view = rig.service._workers.workers_view()
                if [r["worker"] for r in view] == ["agent-0"]:
                    break
                time.sleep(0.02)
            _, doc = _post(f"{rig.base}/jobs", {"spec": SPEC.to_dict()})
            job_id = doc["job_id"]
            # Wait for the dispatch to be in flight on agent 0.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                view = rig.service._workers.workers_view()
                if any(r["job_id"] == job_id for r in view):
                    break
                time.sleep(0.02)
            # Bring a healthy replacement up, then slam agent 0's socket.
            whost, wport = rig.service.worker_address
            rescue = WorkerAgent(
                whost, wport, cache_dir=tmp_path / "rescue-cache",
                worker_id="rescue", quiet=True,
            )
            t_rescue = threading.Thread(target=rescue.run, daemon=True)
            t_rescue.start()
            rig.agents[0].stop()

            final = _poll_terminal(rig.base, job_id)
            assert final["state"] == "succeeded", final["error"]
            _, result = _get(f"{rig.base}/jobs/{job_id}/result")
            assert result["rank_sha256"] == execute_spec(SPEC).rank_digest
            assert result["remote"]["worker_id"] == "rescue"

            events = load_events(rig.service.store.path)
            requeued = [
                e for e in events
                if e["event"] == "requeued" and e["job_id"] == job_id
            ]
            assert requeued, "no requeued event in the job store"
            assert "WorkerCrashError" in requeued[0]["reason"]
            assert requeued[0]["spec_hash"]

            with urllib.request.urlopen(
                f"{rig.base}/metrics", timeout=30
            ) as response:
                text = response.read().decode("utf-8")
            assert "repro_jobs_requeued_total 1" in text
        finally:
            rig.close()

    def test_process_crash_emits_requeued_event_with_reason(self, tmp_path):
        """The local process pool shares the remote path's requeue code
        and event vocabulary: kill a process worker mid-job and the
        store shows the same `requeued` shape before the job succeeds."""
        service = BenchmarkService(
            workers=1, worker_kind="process",
            store_path=tmp_path / "jobs.jsonl",
        )
        try:
            # Warm the pool, then arrange for the *next* dispatch to die.
            first = service.submit(RunSpec(scale=6, backend="numpy"))
            service.result(first)
            victim = service._workers._handles[0]

            killer_done = threading.Event()

            def kill_when_running():
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if victim.process.is_alive() and any(
                        service._running_jobs.values()
                    ):
                        victim.process.kill()
                        break
                    time.sleep(0.01)
                killer_done.set()

            slow = RunSpec(scale=11, backend="python")  # long enough to hit
            threading.Thread(target=kill_when_running, daemon=True).start()
            job_id = service.submit(slow)
            result = service.result(job_id)  # process kind: a payload doc
            killer_done.wait(timeout=30)
            assert result["rank_sha256"]  # retried on a fresh worker

            events = load_events(service.store.path)
            requeued = [
                e for e in events
                if e["event"] == "requeued" and e["job_id"] == job_id
            ]
            assert requeued, "process crash did not record a requeue"
            assert "WorkerCrashError" in requeued[0]["reason"]
            assert "died" in requeued[0]["reason"]
        finally:
            service.close(wait=False)


class TestSubprocessAgents:
    """The CI remote-leg topology with real `repro-pipeline worker`
    processes — and a real SIGKILL mid-sweep."""

    def test_sigkill_one_agent_mid_sweep_still_completes(self, tmp_path):
        service = BenchmarkService(
            workers=2, worker_kind="remote",
            cache_dir=tmp_path / "svc-cache",
            store_path=tmp_path / "jobs.jsonl",
            worker_listen=("127.0.0.1", 0),
            heartbeat_timeout=5.0,
        )
        server, _ = serve_in_thread(service, port=0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        service.set_artifact_base(base)
        whost, wport = service.worker_address
        procs = []
        try:
            for index in range(2):
                procs.append(subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.cli.main", "worker",
                        "--connect", f"{whost}:{wport}",
                        "--cache-dir", str(tmp_path / f"agent{index}-cache"),
                        "--worker-id", f"proc-{index}",
                        "--job-delay", "0.3",
                    ],
                    env=_child_env(),
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                ))
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if service._workers.stats()["workers_connected"] == 2:
                    break
                time.sleep(0.05)
            assert service._workers.stats()["workers_connected"] == 2

            sweep = {
                "base": SPEC.to_dict(),
                "scales": [6, 7],
                "backends": ["numpy", "python"],
            }
            _, doc = _post(f"{base}/jobs", {"sweep": sweep})
            job_id = doc["job_id"]
            # Let cells start flowing, then SIGKILL one agent mid-work.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                view = service._workers.workers_view()
                if any(r["job_id"] for r in view):
                    break
                time.sleep(0.02)
            os.kill(procs[0].pid, signal.SIGKILL)
            procs[0].wait(timeout=10)

            final = _poll_terminal(base, job_id, timeout=300)
            assert final["state"] == "succeeded", final["error"]
            _, result = _get(f"{base}/jobs/{job_id}/result")
            expected = {
                (cell["backend"], cell["scale"]):
                    execute_spec(SPEC.with_overrides(
                        backend=cell["backend"], scale=cell["scale"],
                    )).rank_digest
                for cell in result["cells"]
            }
            actual = {
                (cell["backend"], cell["scale"]): cell["rank_sha256"]
                for cell in result["cells"]
            }
            assert actual == expected
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
            server.shutdown()
            server.server_close()
            service.close(wait=False)
