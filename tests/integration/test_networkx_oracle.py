"""Independent-oracle validation: our PageRank vs networkx's.

networkx implements strongly preferential PageRank independently of
this codebase; agreement on random graphs is strong evidence the whole
K2->K3 chain (normalisation semantics included) is correct, not just
self-consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

networkx = pytest.importorskip("networkx")

from repro.pagerank.gauss_seidel import pagerank_gauss_seidel
from repro.pagerank.variants import pagerank_strongly_preferential


def _graph_and_matrix(seed: int, n: int = 60, p: float = 0.08):
    g = networkx.gnp_random_graph(n, p, seed=seed, directed=True)
    u = np.array([e[0] for e in g.edges()], dtype=np.int64)
    v = np.array([e[1] for e in g.edges()], dtype=np.int64)
    counts = sp.coo_matrix((np.ones(len(u)), (u, v)), shape=(n, n)).tocsr()
    dout = np.asarray(counts.sum(axis=1)).ravel()
    inv = np.where(dout > 0, 1.0 / np.where(dout > 0, dout, 1.0), 1.0)
    return g, (sp.diags(inv) @ counts).tocsr()


@pytest.mark.parametrize("seed", [1, 7, 23])
class TestAgainstNetworkx:
    def test_power_iteration_matches(self, seed):
        g, matrix = _graph_and_matrix(seed)
        ours = pagerank_strongly_preferential(matrix, tol=1e-12)
        theirs = networkx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=500)
        expected = np.array([theirs[i] for i in range(matrix.shape[0])])
        assert ours.converged
        assert np.allclose(ours.rank, expected, atol=1e-8)

    def test_gauss_seidel_matches(self, seed):
        g, matrix = _graph_and_matrix(seed)
        ours = pagerank_gauss_seidel(matrix, tol=1e-12)
        theirs = networkx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=500)
        expected = np.array([theirs[i] for i in range(matrix.shape[0])])
        assert np.allclose(ours.rank, expected, atol=1e-8)

    def test_personalised_matches(self, seed):
        g, matrix = _graph_and_matrix(seed)
        n = matrix.shape[0]
        teleport = np.zeros(n)
        teleport[: n // 4] = 1.0
        ours = pagerank_strongly_preferential(
            matrix, teleport=teleport, tol=1e-12
        )
        personalization = {i: float(teleport[i]) for i in range(n)}
        theirs = networkx.pagerank(
            g, alpha=0.85, tol=1e-12, max_iter=500,
            personalization=personalization,
            dangling=personalization,
        )
        expected = np.array([theirs[i] for i in range(n)])
        assert np.allclose(ours.rank, expected, atol=1e-8)


class TestKernel2AgainstNetworkxDegrees:
    def test_degree_bookkeeping_matches(self):
        g, _ = _graph_and_matrix(seed=11)
        n = g.number_of_nodes()
        u = np.array([e[0] for e in g.edges()], dtype=np.int64)
        v = np.array([e[1] for e in g.edges()], dtype=np.int64)
        from repro.generators.degree import in_degrees, out_degrees

        ours_out = out_degrees(u, v, n)
        ours_in = in_degrees(u, v, n)
        for node in range(n):
            assert ours_out[node] == g.out_degree(node)
            assert ours_in[node] == g.in_degree(node)
