"""Deliberately broken backends for contract-enforcement tests.

Shared between the failure-injection suite and the executor-parity
suite (kept in a plain helper module, not a test file, so either can
import it under any pytest invocation style).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.backends.scipy_backend import ScipyBackend
from repro.edgeio.dataset import EdgeDataset


class BrokenK0(ScipyBackend):
    """Writes fewer edges than the spec demands."""

    name = "broken-k0"

    def kernel0(self, config, out_dir):
        dataset, details = super().kernel0(config, out_dir)
        u, v = dataset.read_all()
        short = EdgeDataset.write(
            Path(str(out_dir) + "-short"), u[:-5], v[:-5],
            num_vertices=config.num_vertices,
        )
        return short, details


class UnsortedK1(ScipyBackend):
    """Skips the sort, violating Kernel 1's contract."""

    name = "broken-k1"

    def kernel1(self, config, source, out_dir):
        u, v = source.read_all()
        # Deliberately reverse-sort to guarantee disorder.
        order = np.argsort(-u)
        dataset = EdgeDataset.write(
            out_dir, u[order], v[order],
            num_vertices=source.num_vertices, num_shards=config.num_files,
        )
        return dataset, {}


class LossyK2(ScipyBackend):
    """Drops edges before counting, breaking sum(A) == M."""

    name = "broken-k2"

    def kernel2(self, config, source):
        handle, details = super().kernel2(config, source)
        handle._pre_filter_total -= 3.0  # simulate lost edges
        return handle, details


class NaNK3(ScipyBackend):
    """Returns a poisoned rank vector."""

    name = "broken-k3"

    def kernel3(self, config, matrix):
        rank, details = super().kernel3(config, matrix)
        rank = rank.copy()
        rank[0] = np.nan
        return rank, details
