"""Cross-backend equivalence: all five backends must agree.

Kernels 1-3 consume files, so their outputs are well-defined regardless
of which backend produced the Kernel 0 dataset.  These tests generate
one shared dataset and push it through every backend, requiring
bit-identical sorted files (up to tie order) and numerically identical
matrices and rank vectors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.registry import get_backend
from repro.core.config import PipelineConfig
from repro.edgeio.dataset import EdgeDataset
from repro.generators.kronecker import kronecker_edges

ALL_BACKENDS = ["python", "numpy", "scipy", "dataframe", "graphblas"]
N = 256
CONFIG = PipelineConfig(scale=8, edge_factor=8, seed=13, iterations=10)


@pytest.fixture(scope="module")
def shared_dataset(tmp_path_factory):
    u, v = kronecker_edges(8, 8, seed=13)
    path = tmp_path_factory.mktemp("shared") / "k0"
    return EdgeDataset.write(path, u, v, num_vertices=N, num_shards=4)


@pytest.fixture(scope="module")
def per_backend_outputs(shared_dataset, tmp_path_factory):
    """Run K1->K3 with every backend on the shared dataset."""
    outputs = {}
    for name in ALL_BACKENDS:
        backend = get_backend(name)
        out_dir = tmp_path_factory.mktemp(f"k1-{name}")
        k1, _ = backend.kernel1(CONFIG, shared_dataset, out_dir)
        handle, k2_details = backend.kernel2(CONFIG, k1)
        rank, _ = backend.kernel3(CONFIG, handle)
        outputs[name] = {
            "k1": k1,
            "matrix": handle.to_scipy_csr(),
            "k2_details": k2_details,
            "rank": rank,
        }
    return outputs


class TestKernel1Agreement:
    def test_sorted_start_vertices_identical(self, per_backend_outputs):
        reference = per_backend_outputs["scipy"]["k1"].read_all()[0]
        for name in ALL_BACKENDS:
            u, _ = per_backend_outputs[name]["k1"].read_all()
            assert np.array_equal(u, reference), name

    def test_edge_multisets_identical(self, per_backend_outputs):
        ref_u, ref_v = per_backend_outputs["scipy"]["k1"].read_all()
        reference = np.sort(ref_u * N + ref_v)
        for name in ALL_BACKENDS:
            u, v = per_backend_outputs[name]["k1"].read_all()
            assert np.array_equal(np.sort(u * N + v), reference), name


class TestKernel2Agreement:
    def test_matrices_numerically_identical(self, per_backend_outputs):
        reference = per_backend_outputs["scipy"]["matrix"]
        for name in ALL_BACKENDS:
            matrix = per_backend_outputs[name]["matrix"]
            difference = (matrix - reference)
            assert abs(difference).max() < 1e-12, name

    def test_elimination_counts_agree(self, per_backend_outputs):
        reference = per_backend_outputs["scipy"]["k2_details"]
        for name in ALL_BACKENDS:
            details = per_backend_outputs[name]["k2_details"]
            assert details["supernode_columns"] == reference["supernode_columns"], name
            assert details["leaf_columns"] == reference["leaf_columns"], name
            assert details["nnz"] == reference["nnz"], name

    def test_entry_totals_equal_m(self, per_backend_outputs):
        for name in ALL_BACKENDS:
            details = per_backend_outputs[name]["k2_details"]
            assert details["pre_filter_entry_total"] == CONFIG.num_edges, name


class TestKernel3Agreement:
    def test_rank_vectors_identical(self, per_backend_outputs):
        reference = per_backend_outputs["scipy"]["rank"]
        for name in ALL_BACKENDS:
            rank = per_backend_outputs[name]["rank"]
            assert np.allclose(rank, reference, atol=1e-12), name

    def test_rank_matches_specification_function(self, per_backend_outputs):
        from repro.backends.base import Backend
        from repro.pagerank.benchmark import benchmark_pagerank

        reference = benchmark_pagerank(
            per_backend_outputs["scipy"]["matrix"],
            Backend.initial_rank(CONFIG),
            damping=CONFIG.damping,
            iterations=CONFIG.iterations,
        )
        assert np.allclose(per_backend_outputs["scipy"]["rank"], reference,
                           atol=1e-12)
