"""End-to-end pipeline integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import KernelName, PipelineConfig
from repro.core.pipeline import Pipeline, run_pipeline

ALL_BACKENDS = ["python", "numpy", "scipy", "dataframe", "graphblas"]


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestEveryBackendEndToEnd:
    def test_full_run_with_contracts_and_validation(self, backend):
        config = PipelineConfig(scale=7, seed=5, backend=backend,
                                num_files=3, validate=True)
        result = run_pipeline(config)
        assert len(result.kernels) == 4
        assert result.rank is not None and len(result.rank) == 128
        assert result.validation is not None and result.validation["passed"]
        assert result.kernel(KernelName.K0_GENERATE).officially_timed is False
        for kernel in result.kernels[1:]:
            assert kernel.officially_timed

    def test_result_reproducible_for_seed(self, backend):
        config = PipelineConfig(scale=6, seed=11, backend=backend)
        first = run_pipeline(config)
        second = run_pipeline(config)
        assert np.array_equal(first.rank, second.rank)


class TestConfigurations:
    def test_many_shards(self):
        config = PipelineConfig(scale=6, seed=1, num_files=13)
        result = run_pipeline(config)
        assert result.kernel(KernelName.K1_SORT).details["num_shards"] == 13

    def test_binary_file_format(self):
        config = PipelineConfig(scale=6, seed=1, file_format="npy")
        result = run_pipeline(config)
        assert result.rank is not None

    def test_one_based_vertex_files(self):
        config = PipelineConfig(scale=6, seed=1, vertex_base=1)
        zero = PipelineConfig(scale=6, seed=1, vertex_base=0)
        a = run_pipeline(config)
        b = run_pipeline(zero)
        # On-disk convention must not change the mathematical result.
        assert np.allclose(a.rank, b.rank)

    @pytest.mark.parametrize("algorithm", ["numpy", "counting", "radix"])
    def test_sort_algorithms_equivalent(self, algorithm):
        config = PipelineConfig(scale=6, seed=1, sort_algorithm=algorithm)
        result = run_pipeline(config)
        baseline = run_pipeline(PipelineConfig(scale=6, seed=1))
        assert np.allclose(result.rank, baseline.rank)

    def test_external_sort_path(self):
        config = PipelineConfig(scale=6, seed=1, external_sort=True)
        result = run_pipeline(config)
        baseline = run_pipeline(PipelineConfig(scale=6, seed=1))
        assert np.allclose(result.rank, baseline.rank)
        assert result.kernel(KernelName.K1_SORT).details["algorithm"] == "external"

    @pytest.mark.parametrize("generator", ["erdos-renyi", "bter", "ppl"])
    def test_alternative_generators(self, generator):
        # Alternative generators do not guarantee M = 16N (BTER/PPL hit
        # the budget approximately), so contract checks on edge counts
        # are skipped via verify=False; the pipeline itself must run.
        config = PipelineConfig(scale=6, seed=3, generator=generator)
        result = run_pipeline(config, verify=False)
        assert result.rank is not None
        assert np.isfinite(result.rank).all()

    def test_ring_generator_uniform_rank(self):
        # Deterministic ring: PageRank is exactly uniform, and kernel 2
        # eliminates *all* columns (every din == 1 == max) — an edge
        # case the paper's leaf rule implies.
        config = PipelineConfig(scale=5, seed=1, generator="ring",
                                edge_factor=1)
        result = run_pipeline(config, verify=False)
        n = config.num_vertices
        k2 = result.kernel(KernelName.K2_FILTER)
        assert k2.details["nnz"] == 0  # every column was max-degree & leaf
        # Rank collapses to pure teleport mass.
        assert np.allclose(result.rank, result.rank[0])

    def test_paper_body_formula_runs(self):
        config = PipelineConfig(scale=6, seed=1, formula="paper-body")
        result = run_pipeline(config)
        baseline = run_pipeline(PipelineConfig(scale=6, seed=1))
        # The /N omission inflates the vector by roughly N-ish factors.
        assert result.rank.sum() > baseline.rank.sum()

    def test_data_dir_files_kept(self, tmp_path):
        config = PipelineConfig(scale=6, seed=1, data_dir=tmp_path,
                                keep_files=True)
        run_pipeline(config)
        assert (tmp_path / "k0" / "manifest.json").exists()
        assert (tmp_path / "k1" / "part-00000.tsv").exists()

    def test_temp_dir_cleaned(self):
        import glob

        before = set(glob.glob("/tmp/repro-pipeline-*"))
        run_pipeline(PipelineConfig(scale=6, seed=1))
        after = set(glob.glob("/tmp/repro-pipeline-*"))
        assert after <= before

    def test_damping_zero_gives_uniform(self):
        config = PipelineConfig(scale=6, seed=1, damping=0.0)
        result = run_pipeline(config)
        # c=0: update is pure teleport -> exactly uniform after 1 step.
        assert np.allclose(result.rank, result.rank[0])

    def test_custom_iteration_count_metric(self):
        config = PipelineConfig(scale=6, seed=1, iterations=7)
        result = run_pipeline(config)
        k3 = result.kernel(KernelName.K3_PAGERANK)
        assert k3.edges_processed == 7 * config.num_edges


class TestPipelineObject:
    def test_explicit_backend_instance(self):
        from repro.backends.scipy_backend import ScipyBackend

        pipeline = Pipeline(PipelineConfig(scale=6, seed=1),
                            backend=ScipyBackend())
        result = pipeline.run()
        assert result.rank is not None

    def test_verify_false_skips_checks(self):
        # Still runs fine; just no re-reading of K1 output.
        result = Pipeline(PipelineConfig(scale=6, seed=1)).run(verify=False)
        assert len(result.kernels) == 4
