"""Integration tests for the async (overlapped) execution strategy.

Pins the subsystem's three promises: results identical to serial
(bit-identical where the backend's arithmetic path is shared), honest
timing attribution (per-kernel busy time plus a separately reported
``overlap_saved_s``), and contract enforcement equal to the other
executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.async_executor import AsyncExecutor
from repro.core.config import KernelName, PipelineConfig
from repro.core.exceptions import KernelContractError
from repro.core.pipeline import run_pipeline
from repro.core.scheduler import SchedulerError
from repro.core.stages import Contract, Stage, default_plan, ExecutionPlan


def _config(backend: str = "scipy", execution: str = "async", **overrides):
    fields = dict(
        scale=8,
        seed=11,
        backend=backend,
        iterations=10,
        num_files=3,
        execution=execution,
        streaming_batch_edges=512,
    )
    fields.update(overrides)
    return PipelineConfig(**fields)


class TestResultParity:
    @pytest.mark.parametrize("backend", ["scipy", "numpy"])
    def test_bit_identical_to_serial(self, backend):
        serial = run_pipeline(_config(backend, "serial"))
        overlapped = run_pipeline(_config(backend, "async"))
        # Not merely allclose: the same bits.
        np.testing.assert_array_equal(overlapped.rank, serial.rank)

    def test_bit_identical_to_streaming(self):
        streaming = run_pipeline(_config("scipy", "streaming"))
        overlapped = run_pipeline(_config("scipy", "async"))
        np.testing.assert_array_equal(overlapped.rank, streaming.rank)

    @pytest.mark.parametrize("num_files", [1, 2, 5])
    def test_shard_count_does_not_change_result(self, num_files):
        reference = run_pipeline(_config("scipy", "serial", num_files=1))
        overlapped = run_pipeline(
            _config("scipy", "async", num_files=num_files)
        )
        np.testing.assert_array_equal(overlapped.rank, reference.rank)

    def test_single_worker_schedule_identical(self):
        # max_workers=1 serialises the graph; the values must not care.
        config = _config("scipy", "async")
        concurrent = AsyncExecutor().execute(config)
        serialised = AsyncExecutor(max_workers=1).execute(config)
        np.testing.assert_array_equal(concurrent.rank, serialised.rank)

    def test_validation_runs_under_async(self):
        result = run_pipeline(_config("scipy", "async", validate=True))
        assert result.validation is not None
        assert result.validation["passed"]


class TestTimingAttribution:
    def test_four_kernels_in_order_with_busy_times(self):
        result = run_pipeline(_config("scipy", "async"))
        assert [k.kernel for k in result.kernels] == list(KernelName)
        for kernel in result.kernels:
            assert kernel.details["execution"] == "async"
            assert kernel.seconds == kernel.details["busy_seconds"]
            assert kernel.seconds >= 0.0
        assert result.kernels[0].officially_timed is False

    def test_overlap_summary_in_k3_details(self):
        result = run_pipeline(_config("scipy", "async"))
        details = result.kernel(KernelName.K3_PAGERANK).details
        assert "overlap_saved_s" in details
        assert details["pipeline_wall_seconds"] > 0.0
        # Contract checks count toward pipeline totals, not stages.
        assert details["verification_seconds"] > 0.0
        assert details["pipeline_busy_seconds"] == pytest.approx(
            sum(details["stage_busy_seconds"].values())
            + details["verification_seconds"]
        )
        assert details["overlap_saved_s"] == pytest.approx(
            details["pipeline_busy_seconds"] - details["pipeline_wall_seconds"]
        )

    def test_contract_violation_fails_fast(self):
        # A violated stage contract must abort the schedule before the
        # terminal stage runs — parity with the serial loop's per-stage
        # checks, not an end-of-run afterthought.
        class TracksK3(Contract):
            name = "never-reached"

            def check(self, ctx):
                raise KernelContractError("stop here")

        ran_k3 = []

        stages = list(default_plan().stages)
        stages[0] = Stage(
            kernel=stages[0].kernel,
            provides=stages[0].provides,
            officially_timed=False,
            contract=TracksK3(),
        )
        plan = ExecutionPlan(stages=tuple(stages))

        class Spy(AsyncExecutor):
            def _run_pagerank(self, ctx):
                ran_k3.append(True)
                return super()._run_pagerank(ctx)

        with pytest.raises(KernelContractError, match="stop here"):
            Spy(plan).execute(_config("scipy", "async"))
        assert ran_k3 == []

    def test_wall_seconds_recorded_on_result(self):
        result = run_pipeline(_config("scipy", "async"))
        assert result.wall_seconds is not None
        assert result.wall_seconds > 0.0
        doc = result.to_dict()
        assert doc["wall_seconds"] == result.wall_seconds

    def test_k2_reports_streaming_style_details(self):
        result = run_pipeline(_config("scipy", "async"))
        k2 = result.kernel(KernelName.K2_FILTER)
        assert k2.edges_processed == result.config.num_edges
        assert 0 < k2.details["unique_triples"] < result.config.num_edges
        io = k2.details["io_overlap"]
        assert io["busy_seconds"] >= 0.0
        assert io["wall_seconds"] > 0.0


class TestContractsAndFailures:
    def test_contracts_enforced(self):
        class Impossible(Contract):
            name = "impossible"

            def check(self, ctx):
                raise KernelContractError("injected violation")

        stages = list(default_plan().stages)
        stages[0] = Stage(
            kernel=stages[0].kernel,
            provides=stages[0].provides,
            officially_timed=False,
            contract=Impossible(),
        )
        plan = ExecutionPlan(stages=tuple(stages))
        with pytest.raises(KernelContractError, match="injected"):
            AsyncExecutor(plan).execute(_config("scipy", "async"))
        # verify=False must skip the same contract.
        result = AsyncExecutor(plan).execute(
            _config("scipy", "async"), verify=False
        )
        assert result.rank is not None

    def test_task_failure_surfaces_as_scheduler_error(self, monkeypatch):
        from repro.generators import registry

        def broken(name):
            raise RuntimeError("generator registry down")

        monkeypatch.setattr(registry, "get_generator", broken)
        with pytest.raises(SchedulerError, match="k0:generate"):
            run_pipeline(_config("scipy", "async"))

    def test_partial_plan_runs(self):
        plan = ExecutionPlan(stages=(default_plan().stages[0],))
        result = AsyncExecutor(plan).execute(_config("scipy", "async"))
        assert [k.kernel for k in result.kernels] == [KernelName.K0_GENERATE]
        assert result.rank is None


class TestCacheFallback:
    def test_cached_k0_k1_still_work(self, tmp_path):
        cache = tmp_path / "c"
        cold = run_pipeline(_config("scipy", "async", cache_dir=cache))
        warm = run_pipeline(_config("scipy", "async", cache_dir=cache))
        for kernel in (KernelName.K0_GENERATE, KernelName.K1_SORT,
                       KernelName.K2_FILTER):
            assert cold.kernel(kernel).details["artifact_cache"] == "miss"
            assert warm.kernel(kernel).details["artifact_cache"] == "hit"
        np.testing.assert_array_equal(cold.rank, warm.rank)

    def test_cache_shared_with_serial_strategy(self, tmp_path):
        cache = tmp_path / "c"
        serial = run_pipeline(_config("scipy", "serial", cache_dir=cache))
        overlapped = run_pipeline(_config("scipy", "async", cache_dir=cache))
        assert (overlapped.kernel(KernelName.K0_GENERATE)
                .details["artifact_cache"] == "hit")
        np.testing.assert_array_equal(overlapped.rank, serial.rank)

    def test_external_sort_falls_back_to_backend_kernels(self):
        result = run_pipeline(_config("scipy", "async", external_sort=True))
        reference = run_pipeline(_config("scipy", "serial", external_sort=True))
        np.testing.assert_array_equal(result.rank, reference.rank)
        k1 = result.kernel(KernelName.K1_SORT)
        assert k1.details["algorithm"] == "external"


class TestProcessLanes:
    """``async_lanes="process"``: same bits, lane-attributed timing."""

    @pytest.mark.parametrize("backend", ["scipy", "numpy"])
    def test_bit_identical_to_serial(self, backend):
        serial = run_pipeline(_config(backend, "serial"))
        offloaded = run_pipeline(
            _config(backend, "async", async_lanes="process")
        )
        np.testing.assert_array_equal(offloaded.rank, serial.rank)

    def test_bit_identical_to_thread_lanes(self):
        thread = run_pipeline(_config("scipy", "async"))
        process = run_pipeline(
            _config("scipy", "async", async_lanes="process")
        )
        np.testing.assert_array_equal(process.rank, thread.rank)

    def test_lane_attribution_in_k3_details(self):
        result = run_pipeline(
            _config("scipy", "async", async_lanes="process")
        )
        details = result.kernel(KernelName.K3_PAGERANK).details
        assert details["async_lanes"] == "process"
        assert details["codec_lane"] == "process"
        lane_busy = details["lane_busy_seconds"]
        assert lane_busy["process"] > 0.0
        assert lane_busy["thread"] > 0.0
        # Lane busy is raw task time; the stage totals adjust Kernel
        # 2's interior lanes, so the two agree only approximately.
        assert sum(lane_busy.values()) == pytest.approx(
            details["pipeline_busy_seconds"], rel=0.25
        )

    def test_thread_lanes_report_no_process_busy(self):
        result = run_pipeline(_config("scipy", "async"))
        details = result.kernel(KernelName.K3_PAGERANK).details
        assert details["async_lanes"] == "thread"
        assert details["codec_lane"] == "thread"
        assert "process" not in details["lane_busy_seconds"]

    def test_npy_format_stays_on_threads(self):
        # Binary shards are raw buffer writes: offload would pay pipe
        # transfer for no GIL relief, so the knob must not apply.
        result = run_pipeline(
            _config("scipy", "async", async_lanes="process",
                    file_format="npy")
        )
        details = result.kernel(KernelName.K3_PAGERANK).details
        assert details["async_lanes"] == "process"
        assert details["codec_lane"] == "thread"
        assert "process" not in details["lane_busy_seconds"]

    def test_cache_coarse_path_stays_on_threads(self, tmp_path):
        # With the artifact cache rerouting K0/K1, stages run coarse —
        # no per-shard tasks exist, so no lane pool is spun up.
        cache = tmp_path / "c"
        result = run_pipeline(
            _config("scipy", "async", async_lanes="process",
                    cache_dir=cache)
        )
        details = result.kernel(KernelName.K3_PAGERANK).details
        assert details["codec_lane"] == "thread"
        serial = run_pipeline(_config("scipy", "serial"))
        np.testing.assert_array_equal(result.rank, serial.rank)

    def test_shard_files_byte_identical_across_lanes(self, tmp_path):
        # The lane workers run the same codec on the same slices; the
        # on-disk artifacts must not depend on where encoding ran.
        thread_dir = tmp_path / "thread"
        process_dir = tmp_path / "process"
        run_pipeline(_config(
            "scipy", "async", data_dir=thread_dir, keep_files=True,
        ))
        run_pipeline(_config(
            "scipy", "async", async_lanes="process",
            data_dir=process_dir, keep_files=True,
        ))
        for kernel_dir in ("k0", "k1"):
            thread_shards = sorted(
                (thread_dir / kernel_dir).glob("part-*.tsv")
            )
            assert thread_shards, f"no shards under {kernel_dir}"
            for shard in thread_shards:
                other = process_dir / kernel_dir / shard.name
                assert shard.read_bytes() == other.read_bytes()

    def test_validation_runs_with_process_lanes(self):
        result = run_pipeline(
            _config("scipy", "async", async_lanes="process", validate=True)
        )
        assert result.validation is not None
        assert result.validation["passed"]


class TestShardPlane:
    """``shard_plane="shm"``: same bits over shared-memory hand-off."""

    def test_bit_identical_across_planes(self):
        serial = run_pipeline(_config("scipy", "serial"))
        pipe = run_pipeline(
            _config("scipy", "async", async_lanes="process")
        )
        shm = run_pipeline(
            _config("scipy", "async", async_lanes="process",
                    shard_plane="shm")
        )
        np.testing.assert_array_equal(pipe.rank, serial.rank)
        np.testing.assert_array_equal(shm.rank, serial.rank)

    def test_k3_details_report_the_handoff(self):
        from repro.core.shmplane import shm_available

        result = run_pipeline(
            _config("scipy", "async", async_lanes="process",
                    shard_plane="shm")
        )
        details = result.kernel(KernelName.K3_PAGERANK).details
        assert details["shard_plane"] == "shm"
        if shm_available():
            assert details["handoff_mode"] == "shm"
            assert details["shm_bytes_saved"] > 0
        else:  # restricted /dev/shm: negotiation degraded, run still fine
            assert details["handoff_mode"] == "pipe"
            assert details["shm_bytes_saved"] == 0

    def test_pipe_plane_reports_zero_saved(self):
        result = run_pipeline(
            _config("scipy", "async", async_lanes="process")
        )
        details = result.kernel(KernelName.K3_PAGERANK).details
        assert details["shard_plane"] == "pipe"
        assert details["handoff_mode"] == "pipe"
        assert details["shm_bytes_saved"] == 0

    def test_thread_lanes_stay_on_pipe(self):
        # In-process hand-off is already zero-copy; the knob must not
        # spin up segments for nothing.
        result = run_pipeline(_config("scipy", "async", shard_plane="shm"))
        details = result.kernel(KernelName.K3_PAGERANK).details
        assert details["shard_plane"] == "shm"
        assert details["handoff_mode"] == "pipe"
        assert details["shm_bytes_saved"] == 0

    def test_mmap_cache_reads_bit_identical(self, tmp_path):
        cache = tmp_path / "c"
        cold = run_pipeline(_config("scipy", "async", cache_dir=cache))
        warm = run_pipeline(
            _config("scipy", "async", cache_dir=cache, cache_mmap=True)
        )
        assert (warm.kernel(KernelName.K0_GENERATE)
                .details["artifact_cache"] == "hit")
        np.testing.assert_array_equal(warm.rank, cold.rank)

    def test_mmap_cache_with_shm_plane(self, tmp_path):
        # Both knobs together: mmap reads reroute K0/K1 coarse, so the
        # lane pool never spins up, and the ranks still match serial.
        cache = tmp_path / "c"
        serial = run_pipeline(_config("scipy", "serial"))
        result = run_pipeline(
            _config("scipy", "async", async_lanes="process",
                    shard_plane="shm", cache_dir=cache, cache_mmap=True)
        )
        np.testing.assert_array_equal(result.rank, serial.rank)

    def test_no_leaked_segments_after_shm_runs(self):
        # Must run after the shm cases above (pytest preserves file
        # order): every segment they created is released by now.
        import gc
        import glob
        import os

        gc.collect()
        from repro.core.shmplane import outstanding_segments

        assert outstanding_segments() == ()
        if os.path.isdir("/dev/shm"):
            mine = glob.glob(f"/dev/shm/psm_repro_{os.getpid()}_*")
            assert mine == [], f"leaked segments: {mine}"


@pytest.mark.skipif(
    "REPRO_PERF_TESTS" not in __import__("os").environ,
    reason="perf comparison needs a multi-core runner; set "
           "REPRO_PERF_TESTS=1 (CI async leg does)",
)
class TestShardPlanePerf:
    def test_shm_wall_no_worse_than_pipe_at_scale_16(self):
        from repro.core.shmplane import shm_available

        if not shm_available():
            pytest.skip("host cannot create shared-memory segments")
        spec = dict(
            scale=16, seed=1, backend="scipy", iterations=20,
            num_files=4, execution="async", async_lanes="process",
        )
        pipe = run_pipeline(PipelineConfig(**spec))
        shm = run_pipeline(PipelineConfig(shard_plane="shm", **spec))
        np.testing.assert_array_equal(shm.rank, pipe.rank)
        details = shm.kernel(KernelName.K3_PAGERANK).details
        assert details["handoff_mode"] == "shm"
        assert details["shm_bytes_saved"] > 0
        # The acceptance bar: zero-copy hand-off must not cost wall
        # time (10% headroom for runner jitter on "no worse").
        assert shm.wall_seconds <= pipe.wall_seconds * 1.10


@pytest.mark.skipif(
    "REPRO_PERF_TESTS" not in __import__("os").environ,
    reason="perf comparison needs a multi-core runner; set "
           "REPRO_PERF_TESTS=1 (CI async leg does)",
)
class TestProcessLanePerf:
    def test_process_lanes_raise_overlap_saved_at_scale_16(self):
        spec = dict(
            scale=16, seed=1, backend="scipy", iterations=20,
            num_files=4, execution="async",
        )
        thread = run_pipeline(PipelineConfig(**spec))
        process = run_pipeline(
            PipelineConfig(async_lanes="process", **spec)
        )
        np.testing.assert_array_equal(process.rank, thread.rank)
        thread_details = thread.kernel(KernelName.K3_PAGERANK).details
        process_details = process.kernel(KernelName.K3_PAGERANK).details
        assert (
            process_details["overlap_saved_s"]
            > thread_details["overlap_saved_s"]
        )
        # The other half of the bar: the offload must not buy its
        # overlap with end-to-end wall time (10% headroom for runner
        # jitter on "no worse").
        assert process.wall_seconds <= thread.wall_seconds * 1.10


class TestSweepIntegration:
    def test_sweep_runs_async_and_skips_python(self):
        from repro.harness.sweep import SweepPlan, run_sweep

        plan = SweepPlan(scales=[6], backends=["python", "scipy"],
                         execution="async")
        records = run_sweep(plan)
        assert {record.backend for record in records} == {"scipy"}
        assert len(records) == 4


class TestTracedAsyncRun:
    """End-to-end trace plane: one traced async run yields the full
    span tree, and busy times re-derived from spans match the
    schedule's (asserted inside the executor; a mismatch would raise)."""

    def _traced_result(self, **overrides):
        return run_pipeline(_config("numpy", "async", trace=True,
                                    **overrides))

    def test_untraced_run_carries_no_trace(self):
        assert run_pipeline(_config("numpy", "async")).trace is None

    def test_trace_doc_spans_every_layer(self):
        result = self._traced_result(
            async_lanes="process",
            shard_plane="shm" if _shm_ok() else "pipe",
        )
        doc = result.trace
        assert doc is not None and doc["spans"]
        names = {s["name"] for s in doc["spans"]}
        for required in (
            "pipeline",
            "stage:k0-generate", "stage:k1-sort",
            "stage:k2-filter", "stage:k3-pagerank",
            "schedule",
            "task:k2-filter", "task:k3-pagerank",
        ):
            assert required in names, (required, sorted(names))
        # Lane-offloaded codec work: dispatch on the parent, op spans
        # merged back from the worker processes.
        assert any(n.startswith("lane-dispatch:") for n in names)
        assert any(n.startswith("lane-op:") for n in names)
        if _shm_ok():
            assert "shm:create" in names
            assert any(n in names for n in ("shm:attach", "shm:adopt"))
        # Every span closed with sane clock values.
        for span_doc in doc["spans"]:
            assert span_doc["dur"] >= 0.0, span_doc

    def test_task_spans_rederive_group_busy(self):
        # The executor itself asserts span-derived busy equals the
        # ScheduleResult's (raising otherwise); here we recompute the
        # same derivation over the *persisted* trace doc and check it
        # against the stage spans' recorded busy_seconds, then against
        # the kernel records (which add assembly work outside the
        # schedule, hence the looser bound).
        from repro.core.trace import task_busy_seconds

        result = self._traced_result()
        derived = task_busy_seconds(result.trace["spans"])
        stage_busy = {
            s["name"].split("stage:", 1)[1]: s["args"]["busy_seconds"]
            for s in result.trace["spans"]
            if s["cat"] == "stage" and "busy_seconds" in s["args"]
        }
        assert set(stage_busy) == set(derived)
        for group, busy in stage_busy.items():
            assert derived[group] == pytest.approx(busy, abs=1e-6)
        for record in result.kernels:
            assert derived[record.kernel.value] == pytest.approx(
                record.seconds, rel=0.05, abs=2e-3
            )

    def test_trace_structure_deterministic_across_runs(self):
        def shape(result):
            return sorted(
                (s["name"], s["cat"]) for s in result.trace["spans"]
            )

        assert shape(self._traced_result()) == shape(self._traced_result())

    def test_chrome_export_is_loadable_and_valid(self):
        import json

        from repro.core.trace import chrome_trace

        result = self._traced_result(async_lanes="process")
        doc = json.loads(json.dumps(chrome_trace(result.trace)))
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and min(e["ts"] for e in complete) == 0.0
        # Lane workers appear as their own process rows.
        assert len({e["pid"] for e in complete}) >= 2


def _shm_ok():
    from repro.core.shmplane import shm_available

    return shm_available()
