"""Executor parity: every execution strategy computes the same answer.

The stage-graph refactor's core promise — serial, streaming, and
shard-parallel execution are *strategies over one pipeline*, not three
pipelines — is only real if they agree numerically and enforce the same
contracts.  These tests pin both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.registry import get_backend
from repro.core.config import KernelName, PipelineConfig
from repro.core.exceptions import ExecutorCapabilityError, KernelContractError
from repro.core.executor import available_executions
from repro.core.pipeline import run_pipeline

#: Backends declaring every execution capability (see Backend.capabilities).
FULL_CAPABILITY_BACKENDS = ["scipy", "numpy"]
#: Backends that can adopt an external CSR matrix (streaming + async).
CSR_CAPABLE_BACKENDS = ["scipy", "numpy", "dataframe", "graphblas"]


def _config(backend: str, execution: str, scale: int = 8) -> PipelineConfig:
    return PipelineConfig(
        scale=scale,
        seed=11,
        backend=backend,
        iterations=10,
        num_files=2,
        execution=execution,
        parallel_ranks=3,
        streaming_batch_edges=512,  # force multiple pass-1 batches
    )


class TestRankParity:
    @pytest.mark.parametrize("backend", FULL_CAPABILITY_BACKENDS)
    @pytest.mark.parametrize("execution", ["streaming", "parallel", "async"])
    def test_identical_rank_vectors(self, backend, execution):
        serial = run_pipeline(_config(backend, "serial"))
        other = run_pipeline(_config(backend, execution))
        assert other.rank is not None
        np.testing.assert_allclose(
            other.rank, serial.rank, rtol=1e-12, atol=1e-15
        )

    @pytest.mark.parametrize("backend", CSR_CAPABLE_BACKENDS)
    @pytest.mark.parametrize("execution", ["streaming", "async"])
    def test_csr_adoption_matches_serial(self, backend, execution):
        # dataframe/graphblas joined the streaming/async capability set
        # via adjacency_from_csr; their ranks must match serial too
        # (dataframe to float tolerance — its serial K2 normalises with
        # a division where the CSR path multiplies by a reciprocal).
        serial = run_pipeline(_config(backend, "serial"))
        other = run_pipeline(_config(backend, execution))
        np.testing.assert_allclose(
            other.rank, serial.rank, rtol=1e-12, atol=1e-15
        )

    @pytest.mark.parametrize("backend", FULL_CAPABILITY_BACKENDS)
    def test_all_strategies_agree_at_scale_10(self, backend):
        results = {
            execution: run_pipeline(_config(backend, execution, scale=10))
            for execution in available_executions()
        }
        reference = results["serial"].rank
        for execution, result in results.items():
            np.testing.assert_allclose(
                result.rank, reference, rtol=1e-12, atol=1e-15,
                err_msg=f"{execution} diverged from serial",
            )

    def test_every_strategy_reports_four_kernels(self):
        for execution in available_executions():
            result = run_pipeline(_config("scipy", execution))
            assert [k.kernel for k in result.kernels] == list(KernelName)
            assert result.benchmark_seconds >= 0.0


class TestContractParityAcrossExecutors:
    """The same violation must be caught identically by every strategy."""

    # ``async`` is absent here by design: its fine-grained Kernel 0/1
    # tasks bypass the (deliberately broken) backend kernels, so these
    # injections cannot fire; its contract enforcement is pinned by
    # tests/integration/test_async_executor.py instead.
    @pytest.mark.parametrize("execution", ["serial", "streaming", "parallel"])
    def test_k0_count_violation_caught(self, execution, tmp_path):
        from broken_backends import BrokenK0

        config = _config("scipy", execution, scale=6)
        with pytest.raises(KernelContractError, match="spec requires"):
            run_pipeline(config, backend=BrokenK0())

    @pytest.mark.parametrize("execution", ["serial", "streaming", "parallel"])
    def test_k1_unsorted_caught(self, execution):
        from broken_backends import UnsortedK1

        config = _config("scipy", execution, scale=6)
        with pytest.raises((KernelContractError, ValueError), match="sorted"):
            # The streaming/parallel K2 paths may themselves reject
            # unsorted input (ValueError) before the contract runs;
            # either way the violation surfaces loudly.
            run_pipeline(config, backend=UnsortedK1())


class TestCapabilityGating:
    @pytest.mark.parametrize("execution", ["streaming", "async"])
    def test_python_backend_lacks_csr_capabilities(self, execution):
        with pytest.raises(ExecutorCapabilityError, match=execution):
            run_pipeline(PipelineConfig(scale=6, backend="python",
                                        execution=execution))

    @pytest.mark.parametrize("backend", ["dataframe", "graphblas"])
    def test_parallel_still_gated(self, backend):
        with pytest.raises(ExecutorCapabilityError, match="parallel"):
            run_pipeline(PipelineConfig(scale=6, backend=backend,
                                        execution="parallel"))

    def test_sweep_skips_unsupported_backends(self):
        from repro.harness.sweep import SweepPlan, run_sweep

        plan = SweepPlan(scales=[6], backends=["python", "scipy"],
                         execution="streaming")
        records = run_sweep(plan)
        assert {r.backend for r in records} == {"scipy"}

    def test_sweep_with_no_capable_backend_raises(self):
        from repro.harness.sweep import SweepPlan, run_sweep

        plan = SweepPlan(scales=[6], backends=["python"],
                         execution="parallel")
        with pytest.raises(ValueError, match="supports execution"):
            run_sweep(plan)

    def test_capability_error_is_value_error(self):
        # The CLI maps ValueError to exit code 2; keep that contract.
        with pytest.raises(ValueError):
            run_pipeline(PipelineConfig(scale=6, backend="python",
                                        execution="parallel"))


class TestStreamingDetails:
    def test_k2_reports_actual_ingested_edges(self):
        result = run_pipeline(_config("scipy", "streaming"))
        k2 = result.kernel(KernelName.K2_FILTER)
        config = result.config
        assert k2.edges_processed == config.num_edges
        assert k2.details["edges_processed"] == config.num_edges
        # Batch dedup means strictly fewer spilled triples than edges
        # for a Kronecker graph with duplicates at this scale.
        assert 0 < k2.details["unique_triples"] < config.num_edges
        assert k2.details["batches"] > 1

    def test_parallel_k3_carries_traffic(self):
        result = run_pipeline(_config("scipy", "parallel"))
        k3 = result.kernel(KernelName.K3_PAGERANK)
        traffic = k3.details["traffic"]
        assert traffic["total_bytes"] > 0
        assert "allreduce" in traffic["bytes_by_op"]
        k2 = result.kernel(KernelName.K2_FILTER)
        assert k2.details["num_ranks"] == 3

    def test_parallel_per_kernel_seconds_are_real(self):
        # The fused driver run is split back into per-kernel clocks so
        # throughput records stay meaningful (no ~0s K3 / double K2).
        result = run_pipeline(_config("scipy", "parallel"))
        k2 = result.kernel(KernelName.K2_FILTER)
        k3 = result.kernel(KernelName.K3_PAGERANK)
        assert k3.seconds > 0.0
        assert k3.seconds == k3.details["measured_seconds"]
        assert k2.seconds >= k2.details["measured_seconds"] - 1e-9
        assert np.isfinite(k3.edges_per_second)


class TestArtifactCache:
    def test_sweep_rerun_hits_cache(self, tmp_path):
        cache = tmp_path / "artifacts"
        config = PipelineConfig(scale=7, seed=4, backend="scipy",
                                cache_dir=cache)
        first = run_pipeline(config)
        second = run_pipeline(config)
        for kernel in (KernelName.K0_GENERATE, KernelName.K1_SORT):
            assert first.kernel(kernel).details["artifact_cache"] == "miss"
            assert second.kernel(kernel).details["artifact_cache"] == "hit"
        np.testing.assert_array_equal(first.rank, second.rank)

    def test_cache_shared_across_executions(self, tmp_path):
        cache = tmp_path / "artifacts"
        base = _config("scipy", "serial", scale=7)
        run_pipeline(base.with_overrides(cache_dir=cache))
        streamed = run_pipeline(
            base.with_overrides(cache_dir=cache, execution="streaming")
        )
        assert (streamed.kernel(KernelName.K0_GENERATE)
                .details["artifact_cache"] == "hit")
        assert (streamed.kernel(KernelName.K1_SORT)
                .details["artifact_cache"] == "hit")

    def test_key_distinguishes_seed_and_scale(self, tmp_path):
        cache = tmp_path / "artifacts"
        base = PipelineConfig(scale=6, seed=1, cache_dir=cache)
        run_pipeline(base)
        other = run_pipeline(base.with_overrides(seed=2))
        assert (other.kernel(KernelName.K0_GENERATE)
                .details["artifact_cache"] == "miss")

    def test_run_sweep_repeats_reuse_artifacts(self, tmp_path):
        from repro.harness.sweep import SweepPlan, run_sweep

        plan = SweepPlan(scales=[6], backends=["scipy"], repeats=3,
                         cache_dir=tmp_path / "artifacts")
        records = run_sweep(plan)
        assert len(records) == 4  # one best record per kernel
        # The cache directory was populated by the first repeat.
        assert any((tmp_path / "artifacts" / "k0").iterdir())
        assert any((tmp_path / "artifacts" / "k1").iterdir())
