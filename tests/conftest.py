"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edgeio.dataset import EdgeDataset
from repro.generators.kronecker import kronecker_edges


@pytest.fixture
def rng():
    """A deterministic numpy Generator for test-local randomness."""
    return np.random.default_rng(20160523)


@pytest.fixture
def small_edges():
    """A small, fixed Kronecker edge list: scale 6, k=4 (256 edges)."""
    return kronecker_edges(6, 4, seed=7)


@pytest.fixture
def tiny_dataset(tmp_path, small_edges):
    """The small edge list written as a 3-shard TSV dataset."""
    u, v = small_edges
    return EdgeDataset.write(
        tmp_path / "tiny", u, v, num_vertices=64, num_shards=3
    )


@pytest.fixture
def toy_matrix():
    """A tiny row-normalised adjacency matrix with known structure.

    Graph: 0 -> 1, 1 -> 2, 2 -> 0, 2 -> 1 (rows normalised).
    """
    import scipy.sparse as sp

    dense = np.array(
        [
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.5, 0.5, 0.0],
        ]
    )
    return sp.csr_matrix(dense)
