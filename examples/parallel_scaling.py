#!/usr/bin/env python3
"""Parallel decomposition study: measured traffic vs the paper's model.

Paper Sections IV.C/D predict the parallel pipeline's behaviour: row
blocks per processor, an in-degree allreduce plus elimination broadcast
in Kernel 2, and a per-iteration rank-vector allreduce in Kernel 3 that
should come to dominate.  This example runs the distributed K2+K3 on
simulated ranks, measures actual communication bytes, checks the
closed-form expectations, and compares against the alpha-beta hardware
model's predictions.

Usage::

    python examples/parallel_scaling.py [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.generators import kronecker_edges
from repro.parallel import run_parallel_pipeline
from repro.perfmodel import LAPTOP_CLASS, predict_parallel_kernel3


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    edge_factor = 16
    iterations = 20
    num_vertices = 1 << scale

    print(f"generating scale-{scale} Kronecker graph "
          f"({edge_factor * num_vertices:,} edges) ...")
    u, v = kronecker_edges(scale, edge_factor, seed=3)

    print(f"\n{'ranks':>6}{'K3 allreduce bytes':>20}{'expected':>14}"
          f"{'total bytes':>14}{'model k3 e/s':>16}")
    serial_rank = None
    for ranks in (1, 2, 4, 8):
        result = run_parallel_pipeline(
            u, v, num_vertices, num_ranks=ranks, iterations=iterations
        )
        if serial_rank is None:
            serial_rank = result.rank_vector
        else:
            assert np.allclose(serial_rank, result.rank_vector, atol=1e-12), \
                "parallel result must not depend on rank count"

        measured = result.traffic["bytes_by_op"].get("allreduce", 0)
        # Closed form: K3 does `iterations` allreduces of an 8N-byte
        # vector, K2 does one 8N allreduce (in-degree) + one scalar;
        # naive algorithm moves 2*(p-1)*payload per allreduce.
        vector_bytes = 8 * num_vertices
        expected = 2 * (ranks - 1) * (
            (iterations + 1) * vector_bytes + 8
        )
        model = predict_parallel_kernel3(
            LAPTOP_CLASS, len(u), num_vertices, ranks, iterations=iterations
        )
        print(f"{ranks:>6}{measured:>20,}{expected:>14,}"
              f"{result.traffic['total_bytes']:>14,}"
              f"{model.edges_per_second:>16,.0f}")

    print("\nload balance at 8 ranks (nnz per rank):")
    result = run_parallel_pipeline(u, v, num_vertices, num_ranks=8,
                                   iterations=1)
    nnz = result.local_nnz
    print(f"  {nnz}  (max/mean = {max(nnz) / (sum(nnz) / len(nnz)):.2f})")

    print("\nmultiprocessing executor (true process parallelism):")
    t0 = time.perf_counter()
    mp_result = run_parallel_pipeline(
        u, v, num_vertices, num_ranks=2, iterations=iterations, executor="mp"
    )
    elapsed = time.perf_counter() - t0
    assert np.allclose(serial_rank, mp_result.rank_vector, atol=1e-12)
    print(f"  2 processes finished in {elapsed:.2f}s; "
          f"results identical to simulated ranks")

    print("\nconclusion: measured allreduce bytes match the closed form, "
          "and the model attributes K3's parallel cost to the network "
          "term — the paper's Section IV.D prediction.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
