#!/usr/bin/env python3
"""Web-page ranking: the paper's motivating scenario, end to end.

Simulates the classic search-engine workflow the benchmark models:

1. a "crawl" produces a power-law link graph written as raw edge files
   (Kernel 0 — the ingest stage of Figure 1);
2. the files are sorted for locality (Kernel 1);
3. the link matrix is cleaned — the super-node (a hub like a link farm)
   and leaf pages are dropped, rows normalised (Kernel 2);
4. PageRank ranks the pages (Kernel 3).

It then goes beyond the benchmark kernel: the same Kernel 2 matrix is
fed to the *converged, dangling-corrected* PageRank variants from the
paper's appendix taxonomy, showing how the fixed-20-iteration benchmark
result relates to a production ranking.

Usage::

    python examples/web_ranking_pipeline.py [scale]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import PipelineConfig
from repro.backends.registry import get_backend
from repro.pagerank import (
    pagerank_sink,
    pagerank_strongly_preferential,
    validate_rank,
)


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    config = PipelineConfig(scale=scale, seed=7, backend="scipy", num_files=8)
    backend = get_backend(config.backend)

    with tempfile.TemporaryDirectory(prefix="web-ranking-") as tmp:
        base = Path(tmp)
        print(f"crawl: generating {config.num_edges:,} links over "
              f"{config.num_vertices:,} pages ...")
        crawl, _ = backend.kernel0(config, base / "crawl")
        print(f"  wrote {crawl.num_shards} edge files, "
              f"{crawl.total_bytes():,} bytes")

        print("ingest: sorting link files by source page ...")
        sorted_links, _ = backend.kernel1(config, crawl, base / "sorted")

        print("clean: building + filtering the link matrix ...")
        handle, details = backend.kernel2(config, sorted_links)
        print(f"  dropped super-node columns: {details['supernode_columns']}, "
              f"leaf columns: {details['leaf_columns']}")
        print(f"  surviving links: {handle.nnz:,}")

        print("rank: 20 fixed PageRank iterations (benchmark kernel) ...")
        benchmark_rank, _ = backend.kernel3(config, handle)

    matrix = handle.to_scipy_csr()

    # --- Compare against production-style PageRank variants ----------
    strongly = pagerank_strongly_preferential(matrix, tol=1e-12)
    sink = pagerank_sink(matrix, tol=1e-12, renormalize=True)
    print(f"\nconverged strongly-preferential PageRank: "
          f"{strongly.iterations} iterations to residual {strongly.residual:.2e}")

    def top_pages(rank: np.ndarray, k: int = 5) -> list:
        order = np.argsort(-rank)
        return [(int(p), float(rank[p])) for p in order[:k]]

    benchmark_normalised = benchmark_rank / benchmark_rank.sum()
    print("\ntop pages (benchmark kernel vs converged variants):")
    print(f"{'benchmark (20 it)':<28}{'strongly preferential':<28}{'sink':<28}")
    rows = zip(top_pages(benchmark_normalised),
               top_pages(strongly.rank), top_pages(sink.rank))
    for (b, s, k) in rows:
        print(f"page {b[0]:>6} {b[1]:.2e}      "
              f"page {s[0]:>6} {s[1]:.2e}      "
              f"page {k[0]:>6} {k[1]:.2e}")

    overlap = len(
        {p for p, _ in top_pages(benchmark_normalised, 10)}
        & {p for p, _ in top_pages(sink.rank, 10)}
    )
    print(f"\ntop-10 overlap between benchmark kernel and converged sink "
          f"PageRank: {overlap}/10")

    report = validate_rank(matrix, benchmark_rank)
    print(f"eigenvector check of the benchmark kernel: "
          f"{'PASS' if report.passed else 'FAIL'} "
          f"(l1 {report.l1_distance:.4f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
