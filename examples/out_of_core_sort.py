#!/usr/bin/env python3
"""Out-of-core Kernel 1: external sort of a larger-than-memory dataset.

Paper Section IV.B: "if u and v are too large to fit in memory, then an
out-of-core algorithm would be required."  This example writes a sharded
edge dataset, sorts it with the external run-generation + k-way-merge
sort under an artificially tiny memory budget (so the machinery actually
spills and multi-pass merges), verifies the result, and compares
throughput against the in-memory path.

Usage::

    python examples/out_of_core_sort.py [scale]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.edgeio import EdgeDataset
from repro.generators import kronecker_edges
from repro.sort import ExternalSortConfig, external_sort_dataset, numpy_sort_edges


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    edge_factor = 16
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices

    print(f"generating {num_edges:,} edges (scale {scale}) ...")
    u, v = kronecker_edges(scale, edge_factor, seed=99)

    with tempfile.TemporaryDirectory(prefix="oocsort-") as tmp:
        base = Path(tmp)
        dataset = EdgeDataset.write(
            base / "unsorted", u, v,
            num_vertices=num_vertices, num_shards=8,
        )
        print(f"wrote {dataset.num_shards} shards, "
              f"{dataset.total_bytes():,} bytes")

        # Tiny budget: ~1/32 of the edges per run => many runs, and a
        # fan-in of 4 forces multi-pass merging.
        config = ExternalSortConfig(
            batch_edges=max(num_edges // 32, 1024),
            fan_in=4,
            merge_block_edges=4096,
        )
        print(f"external sort: runs of {config.batch_edges:,} edges, "
              f"fan-in {config.fan_in} (multi-pass) ...")
        t0 = time.perf_counter()
        sorted_ds = external_sort_dataset(dataset, base / "sorted", config=config)
        external_seconds = time.perf_counter() - t0

        su, sv = sorted_ds.read_all()
        assert np.all(np.diff(su) >= 0), "output must be sorted by start vertex"
        assert len(su) == num_edges, "no edges may be lost"
        # Same multiset of edges (order-independent check).
        key_in = np.sort(u * num_vertices + v)
        key_out = np.sort(su * num_vertices + sv)
        assert np.array_equal(key_in, key_out), "edge multiset must be preserved"
        print(f"  verified: sorted, complete, and a permutation of the input")
        print(f"  external path: {external_seconds:.2f}s "
              f"({num_edges / external_seconds:,.0f} edges/s)")

        t0 = time.perf_counter()
        mu, mv = dataset.read_all()
        numpy_sort_edges(mu, mv)
        in_memory_seconds = time.perf_counter() - t0
        print(f"  in-memory path: {in_memory_seconds:.2f}s "
              f"({num_edges / in_memory_seconds:,.0f} edges/s)")
        print(f"  out-of-core overhead: "
              f"{external_seconds / in_memory_seconds:.1f}x "
              f"(the price of bounded memory)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
