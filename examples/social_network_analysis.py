#!/usr/bin/env python3
"""Social-network influencer analysis on a BTER community graph.

The paper (Section III) lists social network analysis among PageRank's
applications, and names BTER as an alternative Kernel 0 generator with
realistic community structure.  This example:

1. builds a BTER graph (power-law degrees + affinity-block communities);
2. verifies the degree distribution is heavy-tailed (Hill estimator);
3. ranks users with the pipeline's Kernel 2 + 3 machinery;
4. uses the GraphBLAS-lite substrate directly for a two-hop audience
   reach query — the kind of "extend search/hop" operation in the
   paper's Figure 2 taxonomy.

Usage::

    python examples/social_network_analysis.py [num_users]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.generators import bter_edges, in_degrees, out_degrees, power_law_exponent
from repro.grb import LOR_LAND, Matrix, Vector, vxm
from repro.pagerank import pagerank_strongly_preferential
import scipy.sparse as sp


def build_follow_matrix(u: np.ndarray, v: np.ndarray, n: int) -> sp.csr_matrix:
    """Kernel 2's construction + normalisation for an arbitrary edge list."""
    counts = sp.coo_matrix((np.ones(len(u)), (u, v)), shape=(n, n)).tocsr()
    dout = np.asarray(counts.sum(axis=1)).ravel()
    inv = np.where(dout > 0, 1.0 / np.where(dout > 0, dout, 1.0), 1.0)
    return (sp.diags(inv) @ counts).tocsr()


def main() -> int:
    num_users = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"building BTER follow graph over {num_users:,} users ...")
    u, v = bter_edges(num_users, seed=123)
    print(f"  {len(u):,} follow edges")

    dout = out_degrees(u, v, num_users)
    din = in_degrees(u, v, num_users)
    alpha = power_law_exponent(din[din > 0], d_min=2)
    print(f"  in-degree: max={din.max()}, mean={din.mean():.1f}, "
          f"power-law exponent ~{alpha:.2f}")

    follow = build_follow_matrix(u, v, num_users)
    result = pagerank_strongly_preferential(follow, tol=1e-12)
    print(f"\nPageRank converged in {result.iterations} iterations")

    top = np.argsort(-result.rank)[:10]
    print("top influencers (rank vs raw followers):")
    for user in top:
        print(f"  user {user:>6}: rank {result.rank[user]:.3e}, "
              f"followers {din[user]:>5}, following {dout[user]:>5}")

    spearman_like = np.corrcoef(result.rank, din)[0, 1]
    print(f"\ncorrelation(rank, follower count) = {spearman_like:.3f} "
          f"(PageRank rewards *who* follows you, not just how many)")

    # --- GraphBLAS-lite: two-hop audience of the top influencer ------
    # Edge u -> v means "u follows v", so a post by X reaches X's
    # followers along the *transposed* graph: audience = frontier @ A^T.
    adjacency = Matrix.build(u, v, nrows=num_users, ncols=num_users)
    followers_of = adjacency.transpose().apply(
        lambda vals: (vals > 0).astype(float)
    )
    seed_vec = np.zeros(num_users)
    seed_vec[top[0]] = 1.0
    frontier = Vector.from_dense(seed_vec)
    one_hop = vxm(frontier, followers_of, LOR_LAND)
    two_hop = vxm(one_hop, followers_of, LOR_LAND)
    reach_1 = int((one_hop.to_dense() > 0).sum())
    reach_2 = int((two_hop.to_dense() > 0).sum())
    print(f"\ntwo-hop reach of user {top[0]} (lor_land semiring): "
          f"1-hop={reach_1:,} users, 2-hop={reach_2:,} users "
          f"({100.0 * reach_2 / num_users:.1f}% of the network)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
