#!/usr/bin/env python3
"""Quickstart: run the full PageRank pipeline benchmark once.

Runs all four kernels at a laptop-friendly scale, prints the paper's
per-kernel edges/second metrics, and cross-checks the Kernel 3 result
against the principal eigenvector (paper Section IV.D).

Usage::

    python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

from repro import KernelName, PipelineConfig, run_pipeline


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    config = PipelineConfig(
        scale=scale,          # N = 2**scale vertices
        edge_factor=16,       # M = 16 * N edges (paper default)
        seed=42,              # fully reproducible run
        backend="scipy",      # try: python | numpy | scipy | dataframe | graphblas
        num_files=4,          # the benchmark's free file-count parameter
        validate=True,        # eigenvector cross-check after Kernel 3
    )
    print(f"Running PageRank pipeline: N={config.num_vertices:,} "
          f"M={config.num_edges:,} backend={config.backend}")

    result = run_pipeline(config)

    print(f"\n{'kernel':<14}{'seconds':>10}{'edges/s':>16}")
    for kernel in result.kernels:
        marker = "" if kernel.officially_timed else "  (untimed by spec)"
        print(f"{kernel.kernel.value:<14}{kernel.seconds:>10.4f}"
              f"{kernel.edges_per_second:>16,.0f}{marker}")

    k3 = result.kernel(KernelName.K3_PAGERANK)
    print(f"\nrank vector: sum={result.rank.sum():.6f} "
          f"(mass leaks by design — eliminated columns + dangling rows)")
    print(f"top vertex: {result.rank.argmax()} "
          f"with rank {result.rank.max():.3e}")

    assert result.validation is not None
    status = "PASS" if result.validation["passed"] else "FAIL"
    print(f"eigenvector validation: {status} "
          f"(l1 distance {result.validation['l1_distance']:.4f}, "
          f"tolerance {result.validation['tolerance']})")
    return 0 if result.validation["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
