"""Drive the benchmark job service programmatically.

Demonstrates the declarative API surface end to end:

1. build RunSpecs by hand and from the scenario registry;
2. submit a burst of jobs to a BenchmarkService sharing one artifact
   cache and one durable JSONL job store;
3. watch deduplication collapse identical in-flight submissions;
4. collect results and verify bit-exact parity with a direct run;
5. fan a whole SweepSpec grid across a *process* worker pool and read
   back the assembled sweep table (digests identical to thread runs);
6. read the job store back as an audit log.

Run with:  PYTHONPATH=src python examples/benchmark_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import RunSpec, SweepSpec, execute_spec, get_scenario
from repro.service import BenchmarkService, load_events


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-demo-"))
    store = workdir / "jobs.jsonl"

    # A burst of workloads: three seeds of a small run, a scenario, and
    # one duplicate spec that the service will deduplicate in flight.
    specs = [RunSpec(scale=8, seed=seed, backend="scipy") for seed in (1, 2, 3)]
    specs.append(get_scenario("smoke"))
    duplicate = specs[0]

    with BenchmarkService(
        workers=2, cache_dir=workdir / "cache", store_path=store
    ) as service:
        job_ids = [service.submit(spec) for spec in specs]
        dup_id = service.submit(duplicate)
        print(f"submitted {len(specs)} specs + 1 duplicate")
        print(f"duplicate collapsed onto {dup_id}: {dup_id == job_ids[0]}")

        for spec, job_id in zip(specs, job_ids):
            outcome = service.result(job_id, timeout=300)
            k3 = next(r for r in outcome.records if r.kernel == "k3-pagerank")
            print(
                f"{job_id}  scale={spec.scale} seed={spec.seed} "
                f"backend={spec.backend:8s} k3 {k3.edges_per_second:,.0f} "
                f"edges/s  rank sha256 {outcome.rank_digest[:16]}…"
            )

        # Parity: the service's answer is bit-identical to a direct,
        # in-process execution of the same spec.
        direct = execute_spec(specs[0])
        served = service.result(job_ids[0])
        assert served.rank_digest == direct.rank_digest
        print("parity with direct execution: bit-identical")

    # A sweep job on a multi-process pool: the grid fans out across
    # worker processes; the parent job's result is the sweep table.
    sweep = SweepSpec(
        base=RunSpec(scale=8, backend="scipy"),
        scales=(8, 9), backends=("numpy", "scipy"),
    )
    with BenchmarkService(
        workers=2, worker_kind="process",
        cache_dir=workdir / "cache", store_path=store,
    ) as service:
        parent_id = service.submit_sweep(sweep)
        table = service.result(parent_id, timeout=600)
        print(f"\nsweep {parent_id} on process workers: {table['state']}")
        for cell in table["cells"]:
            print(
                f"  {cell['backend']:8s} scale={cell['scale']}  "
                f"{cell['state']:9s} rank sha256 {cell['rank_sha256'][:16]}…"
            )
        print(f"  {len(table['records'])} records in the sweep table")

    events = load_events(store)
    print(f"\njob store at {store} ({len(events)} events):")
    for event in events:
        line = f"  {event['event']:12s} {event.get('job_id', '')}"
        if event["event"] == "succeeded":
            if event.get("rank_sha256"):
                line += f"  rank={event['rank_sha256'][:12]}…"
            elif event.get("kind") == "sweep":
                line += f"  sweep table ({len(event['records'])} records)"
        print(line)


if __name__ == "__main__":
    main()
