#!/usr/bin/env python3
"""Graph analysis on the benchmark graph with GraphBLAS-lite.

The paper's Figure 2 lists the operations big-data systems run beyond
PageRank: "execute search", "extend search/hop", "construct graph
relationships", "bulk analyze graphs".  This example performs all of
them on a Kronecker benchmark graph using only the GraphBLAS-lite
substrate — demonstrating the paper's thesis that one linear-algebra
vocabulary covers the whole analytic stage:

* BFS from the highest-degree vertex (search / hop extension);
* weakly connected components (bulk graph analysis);
* triangle counting (bulk graph analysis);
* PageRank via ``vxm`` (the Kernel 3 computation itself).

Usage::

    python examples/graphblas_algorithms.py [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.generators import kronecker_edges
from repro.grb import (
    Matrix,
    bfs_levels,
    connected_components,
    pagerank_grb,
    triangle_count,
)


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    n = 1 << scale
    print(f"building scale-{scale} Kronecker graph ({16 * n:,} edges) ...")
    u, v = kronecker_edges(scale, 16, seed=5)
    adjacency = Matrix.build(u, v, nrows=n, ncols=n)
    print(f"  adjacency: {adjacency.nvals:,} distinct edges "
          f"(duplicates accumulated as counts)")

    # --- search: BFS from the biggest hub ----------------------------
    out_deg = adjacency.reduce_rows()
    hub = int(np.argmax(out_deg))
    levels = bfs_levels(adjacency, hub)
    reached = levels >= 0
    print(f"\nBFS from hub vertex {hub} (out-degree {out_deg[hub]:.0f}):")
    for depth in range(int(levels.max()) + 1):
        print(f"  hop {depth}: {(levels == depth).sum():,} vertices")
    print(f"  unreachable: {(~reached).sum():,}")

    # --- bulk analysis: components and triangles ----------------------
    labels = connected_components(adjacency)
    component_ids, sizes = np.unique(labels, return_counts=True)
    print(f"\nweakly connected components: {len(component_ids):,} "
          f"(largest {sizes.max():,} vertices, "
          f"{100.0 * sizes.max() / n:.1f}% of the graph)")

    triangles = triangle_count(adjacency)
    print(f"triangles (undirected view): {triangles:,}")

    # --- ranking: PageRank on the normalised matrix -------------------
    dout = adjacency.reduce_rows()
    inv = np.where(dout > 0, 1.0 / np.where(dout > 0, dout, 1.0), 1.0)
    normalised = adjacency.scale_rows(inv)
    rank, mass = pagerank_grb(normalised, iterations=20)
    top = np.argsort(-rank)[:5]
    print(f"\nPageRank (20 iterations, mass {mass:.4f}):")
    for vertex in top:
        print(f"  vertex {vertex:>7}: rank {rank[vertex]:.3e}, "
              f"out-degree {out_deg[vertex]:.0f}, "
              f"bfs hop {levels[vertex] if levels[vertex] >= 0 else '-'}")

    # Sanity: the BFS tree and components must agree — every vertex
    # reached from the hub shares the hub's component label.
    assert np.all(labels[reached] == labels[hub])
    print("\nconsistency check: BFS-reachable set lies in one weak "
          "component — OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
